"""Shard routing and the per-shard offset index (pure logic, no I/O writes).

The sharded :class:`~repro.lab.store.ResultStore` splits the keyspace
over ``shards/<prefix>/results.jsonl`` files.  This module owns the two
pieces the store and its tests must agree on exactly:

* :func:`shard_prefix` — the routing function.  It must be **stable
  across processes and platforms** (two interpreters appending the same
  key must land in the same shard file), so it is a pure function of
  the key bytes: the first :data:`SHARD_PREFIX_LEN` hex characters of
  ``sha256(key)``.  Lab keys are themselves SHA-256 hex, but the prefix
  re-hashes rather than slicing so arbitrary (test, legacy, future)
  keys still spread uniformly;
* :class:`ShardIndex` — the sidecar ``index.json`` a compaction writes
  next to a shard's data file: for every key, the byte offset and
  length of its *deepest* checkpoint line, plus the shard's active
  lease records and summary counts.  The index is a pure accelerator:
  readers must verify it against the data file (``indexed_bytes``
  bound, seek-and-reparse of any served entry) and fall back to a scan
  when it disagrees — a stale index may cost a re-scan, never a wrong
  rung.

Only *reading* lives here.  Every byte that mutates a shard (data
appends, the compaction ``os.replace``, the index publish) is written
by ``store.py`` under that shard's ``_StoreLock``; the
``lock-discipline`` project rule covers both modules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

#: Hex characters of the routing hash that name a shard (16^2 = 256
#: shards — ~400 keys per shard at the 10^5-key roadmap scale).
SHARD_PREFIX_LEN = 2

#: Version stamped into every index document; readers discard newer.
INDEX_VERSION = 1

#: Sidecar file name, next to each shard's ``results.jsonl``.
INDEX_NAME = "index.json"


def shard_prefix(key: str) -> str:
    """The shard a key routes to: first hex chars of ``sha256(key)``.

    Pure and platform-free by construction (no ``hash()``, no locale,
    no filesystem state), so every process ever built routes a key the
    same way.

    >>> shard_prefix("abc")
    'ba'
    >>> len(shard_prefix("anything")) == SHARD_PREFIX_LEN
    True
    """
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
    return digest[:SHARD_PREFIX_LEN]


@dataclass(frozen=True)
class IndexEntry:
    """Where one key's deepest checkpoint line lives in the data file.

    ``stamp`` is the recency the eviction policy ages against: carried
    over from the previous index while the deepest rung is unchanged,
    reset to the compaction's wall stamp when the key deepened.
    """

    offset: int
    length: int
    trials: int
    accepted: int
    stamp: float

    def to_document(self) -> Dict[str, Any]:
        return {
            "offset": self.offset,
            "length": self.length,
            "trials": self.trials,
            "accepted": self.accepted,
            "stamp": self.stamp,
        }

    @classmethod
    def from_document(cls, data: Any) -> Optional["IndexEntry"]:
        if not isinstance(data, dict):
            return None
        try:
            entry = cls(
                offset=int(data["offset"]),
                length=int(data["length"]),
                trials=int(data["trials"]),
                accepted=int(data["accepted"]),
                stamp=float(data["stamp"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if entry.offset < 0 or entry.length <= 0 or entry.trials <= 0:
            return None
        if not 0 <= entry.accepted <= entry.trials:
            return None
        return entry


@dataclass(frozen=True)
class ShardIndex:
    """One shard's sidecar index, as written by a compaction.

    ``indexed_bytes`` is the data-file size the index describes: bytes
    beyond it are the *tail* — appends that landed after the
    compaction, which readers scan and merge on top.  A data file
    *shorter* than ``indexed_bytes`` can only mean the index is stale
    (truncation, replacement by older code): the whole document is
    discarded.

    ``leases`` snapshots the claim records that were active at build
    time — they are also rewritten into the data file, so the snapshot
    is an accelerator for ``status()``, not the source of truth.
    """

    indexed_bytes: int
    lines: int
    built_stamp: float
    entries: Dict[str, IndexEntry] = field(default_factory=dict)
    leases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    version: int = INDEX_VERSION

    def stored_trials(self) -> int:
        """Sum of deepest-checkpoint depths — the status fast path."""
        return sum(entry.trials for entry in self.entries.values())

    def to_document(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "indexed_bytes": self.indexed_bytes,
            "lines": self.lines,
            "built_stamp": self.built_stamp,
            "entries": {
                key: entry.to_document() for key, entry in self.entries.items()
            },
            "leases": self.leases,
        }

    @classmethod
    def from_document(cls, data: Any) -> Optional["ShardIndex"]:
        """Parse a document; ``None`` for anything malformed or newer."""
        if not isinstance(data, dict):
            return None
        try:
            version = int(data["version"])
            indexed_bytes = int(data["indexed_bytes"])
            lines = int(data["lines"])
            built_stamp = float(data["built_stamp"])
            raw_entries = data["entries"]
            raw_leases = data.get("leases", {})
        except (KeyError, TypeError, ValueError):
            return None
        if version > INDEX_VERSION or indexed_bytes < 0 or lines < 0:
            return None
        if not isinstance(raw_entries, dict) or not isinstance(raw_leases, dict):
            return None
        entries: Dict[str, IndexEntry] = {}
        for key, raw in raw_entries.items():
            entry = IndexEntry.from_document(raw)
            if entry is None:
                return None  # one bad entry poisons the document
            entries[str(key)] = entry
        leases = {
            str(key): dict(raw)
            for key, raw in raw_leases.items()
            if isinstance(raw, dict)
        }
        return cls(
            indexed_bytes=indexed_bytes,
            lines=lines,
            built_stamp=built_stamp,
            entries=entries,
            leases=leases,
        )


def index_path(shard_dir: Path) -> Path:
    """Where a shard directory's sidecar index lives."""
    return shard_dir / INDEX_NAME


def load_index(shard_dir: Path) -> Optional[ShardIndex]:
    """Read a shard's index; ``None`` when missing, corrupt, or newer.

    Every failure mode (absent file, torn JSON, foreign version, a
    malformed entry) degrades to ``None`` — the caller falls back to a
    full scan, which is always correct.
    """
    try:
        raw = index_path(shard_dir).read_text(encoding="utf-8")
        data = json.loads(raw)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return ShardIndex.from_document(data)
