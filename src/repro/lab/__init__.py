"""repro.lab — a persistent experiment store with seed-exact resumption.

The engine made acceptance experiments fast; the lab makes them
*durable*.  Every result is keyed by a content hash of what determines
its statistics (the word, the recognizer, the parent seed) and cached
as a cumulative checkpoint in an append-only JSON-lines store, so:

* re-running an unchanged experiment is a pure cache hit — zero engine
  trials execute;
* asking for *more* trials **deepens** the cached result: only the
  missing trials run, continuing the unsharded run's exact per-trial
  seed plan (:func:`repro.engine.trial_seed_plan`), and the merged
  counts are identical — not approximately, identically — to one
  fresh run at the full depth, on every backend.

Layers:

* :mod:`repro.lab.spec`  — :class:`ExperimentSpec` + content-hash keys;
* :mod:`repro.lab.shards` — shard routing and the per-shard offset
  index (pure logic shared by store, tests, and tools);
* :mod:`repro.lab.store` — :class:`ResultStore`, the durable sharded
  checkpoint log (atomic appends, corruption-tolerant reads, schema
  versioning, verified indexes, tombstone eviction, leases);
* :mod:`repro.lab.orchestrator` — :class:`Orchestrator`, the
  cache / deepen / fresh decision.

Entry points: ``Orchestrator(store).run(spec)`` from code,
``repro.analysis.acceptance_sweep(..., store=...)`` for sweeps, and
``python -m repro lab run|status|report`` from the shell.
"""

from .spec import ExperimentSpec, WORD_FAMILIES
from .shards import ShardIndex, shard_prefix
from .store import (
    ControlRecord,
    LabRecord,
    ResultStore,
    SCHEMA_VERSION,
    StoreScan,
    StoreStatus,
)
from .orchestrator import (
    LabRunResult,
    MaintenanceReport,
    Orchestrator,
    PrecisionRunResult,
)

__all__ = [
    "ExperimentSpec",
    "WORD_FAMILIES",
    "ControlRecord",
    "LabRecord",
    "ResultStore",
    "SCHEMA_VERSION",
    "ShardIndex",
    "StoreScan",
    "StoreStatus",
    "shard_prefix",
    "LabRunResult",
    "MaintenanceReport",
    "Orchestrator",
    "PrecisionRunResult",
]
