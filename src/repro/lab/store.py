"""Durable experiment results: an append-only JSON-lines checkpoint log.

One :class:`ResultStore` owns a directory with a single
``results.jsonl``.  Every line is one :class:`LabRecord` — a *cumulative
checkpoint* of an experiment: "after ``trials`` trials of the run keyed
``key``, ``accepted`` of them accepted".  The log is append-only, so a
deepened experiment accumulates a ladder of checkpoints (1 000, 10 000,
500 000, ...) and any rung can later serve — or seed the continuation
of — a request at that depth.

Durability properties:

* **atomic appends** — each record is serialized to one line and
  written with a single ``os.write`` on an ``O_APPEND`` descriptor,
  under an advisory ``flock`` where the platform has one, so
  concurrent writers interleave whole lines, never bytes;
* **corruption tolerance** — the reader skips lines that are not valid
  JSON or miss required fields (a torn final line from a crashed
  writer, editor damage) and reports how many it skipped via the
  per-call :attr:`StoreScan.corrupt_lines` instead of failing the
  load;
* **schema versioning** — every line carries ``schema``; lines from a
  *newer* schema than this code understands are skipped, not
  misparsed, so old readers degrade gracefully against new writers.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Version written into every record; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: Fields a line must carry to be a readable record.
_REQUIRED = ("schema", "key", "spec", "trials", "accepted", "backend")


@dataclass(frozen=True)
class LabRecord:
    """One cumulative checkpoint of one experiment."""

    key: str
    spec: Dict[str, Any]
    trials: int
    accepted: int
    backend: str
    elapsed_s: float = 0.0
    schema: int = SCHEMA_VERSION

    @property
    def probability(self) -> float:
        return self.accepted / self.trials

    def to_line(self) -> str:
        """One JSON line; ``allow_nan=False`` keeps the file parseable."""
        return json.dumps(asdict(self), sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_line(cls, line: str) -> Optional["LabRecord"]:
        """Parse one line; ``None`` for corrupt or foreign-schema lines."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict) or any(f not in data for f in _REQUIRED):
            return None
        if not isinstance(data["schema"], int) or data["schema"] > SCHEMA_VERSION:
            return None
        try:
            record = cls(
                key=str(data["key"]),
                spec=dict(data["spec"]),
                trials=int(data["trials"]),
                accepted=int(data["accepted"]),
                backend=str(data["backend"]),
                elapsed_s=float(data.get("elapsed_s", 0.0)),
                schema=int(data["schema"]),
            )
        except (TypeError, ValueError):
            return None
        # Range checks: a parseable line with impossible counts is just
        # as corrupt as a torn one, and consumers (Wilson intervals,
        # deepening arithmetic) must never see it.
        if record.trials <= 0 or not 0 <= record.accepted <= record.trials:
            return None
        return record


def _flock(fd: int, lock: bool) -> None:
    """Advisory whole-file lock; a no-op where ``fcntl`` is missing."""
    try:
        import fcntl
    except ImportError:  # non-POSIX
        return
    fcntl.flock(fd, fcntl.LOCK_EX if lock else fcntl.LOCK_UN)


class _StoreLock:
    """Mutual exclusion between writers via a sidecar lock file.

    The lock lives in ``results.jsonl.lock``, *not* the data file:
    :meth:`ResultStore.compact` replaces the data file's inode, so a
    lock taken on the data file itself would leave a window where an
    appender holds the old inode while the compactor publishes the new
    one — and the append would vanish.  The sidecar is never replaced,
    so every writer serializes on the same inode forever.
    """

    def __init__(self, data_path: Path) -> None:
        self._path = data_path.with_name(data_path.name + ".lock")
        self._fd: Optional[int] = None

    def __enter__(self) -> "_StoreLock":
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self._path, os.O_WRONLY | os.O_CREAT, 0o644)
        _flock(self._fd, True)
        return self

    def __exit__(self, *exc) -> None:
        # Explicit guard, not an assert: under ``python -O`` asserts are
        # stripped, and a double-exit would then reach ``_flock(None)``
        # (TypeError) while leaking the descriptor.  Swapping the field
        # first makes unlock/close happen at most once however many
        # times __exit__ runs.
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            _flock(fd, False)
        finally:
            os.close(fd)


@dataclass(frozen=True)
class StoreScan:
    """One full read of the log: the readable records plus scan stats.

    Returned by :meth:`ResultStore.scan` so corruption reporting is
    per-call state: a caller's count can never be clobbered by a later
    query's internal re-scan.
    """

    records: List[LabRecord]
    corrupt_lines: int


@dataclass
class ResultStore:
    """JSON-lines store of :class:`LabRecord` checkpoints, keyed by spec.

    Construct with a directory path (created on demand).  Reads are
    full-file scans — experiment logs are small (one line per
    run/deepening, not per trial) and a scan per orchestrator call
    keeps the on-disk format trivially recoverable.
    """

    root: Union[str, Path]
    #: Corruption count from the most recent *explicit* :meth:`load`
    #: call only.  Internal scans (``checkpoints``, ``deepest``,
    #: ``latest_by_key``, ``compact``) never touch it — use
    #: :meth:`scan` when you need records and stats together.
    corrupt_lines: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def path(self) -> Path:
        """The underlying JSON-lines file."""
        return Path(self.root) / "results.jsonl"

    def append(self, record: LabRecord) -> None:
        """Durably append one checkpoint (atomic at line granularity).

        The data file is opened *inside* the store lock so an append
        can never land on an inode :meth:`compact` is about to retire.
        """
        payload = record.to_line().encode("utf-8")
        with _StoreLock(self.path):
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)

    def scan(self) -> StoreScan:
        """One full read: readable checkpoints plus this scan's stats.

        Unreadable lines (torn writes, foreign schemas, hand damage)
        are skipped and counted in the returned
        :attr:`StoreScan.corrupt_lines` — per-call state, immune to
        later queries re-scanning the file.
        """
        if not self.path.exists():
            return StoreScan(records=[], corrupt_lines=0)
        records: List[LabRecord] = []
        corrupt = 0
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                if not line.strip():
                    continue
                record = LabRecord.from_line(line)
                if record is None:
                    corrupt += 1
                else:
                    records.append(record)
        return StoreScan(records=records, corrupt_lines=corrupt)

    def load(self) -> List[LabRecord]:
        """All readable checkpoints, in append order.

        Also mirrors the scan's corruption count into
        :attr:`corrupt_lines` for callers of the historical attribute
        API; prefer :meth:`scan` for stats that must survive subsequent
        queries.
        """
        result = self.scan()
        self.corrupt_lines = result.corrupt_lines
        return result.records

    def checkpoints(
        self, key: str, records: Optional[List[LabRecord]] = None
    ) -> List[LabRecord]:
        """This key's checkpoint ladder, shallowest first.

        When the log holds several records at the same depth (a
        re-computed checkpoint), the latest append wins.  Pass
        *records* (e.g. from a :meth:`scan`) to reuse a read instead of
        re-scanning the file.
        """
        if records is None:
            records = self.scan().records
        by_trials: Dict[int, LabRecord] = {}
        for record in records:
            if record.key == key:
                by_trials[record.trials] = record
        return [by_trials[t] for t in sorted(by_trials)]

    def deepest(self, key: str) -> Optional[LabRecord]:
        """The deepest checkpoint for *key*, or ``None``."""
        ladder = self.checkpoints(key)
        return ladder[-1] if ladder else None

    def latest_by_key(
        self, records: Optional[List[LabRecord]] = None
    ) -> Dict[str, LabRecord]:
        """Deepest checkpoint per experiment, for status/report views."""
        if records is None:
            records = self.scan().records
        deepest: Dict[str, LabRecord] = {}
        for record in records:
            held = deepest.get(record.key)
            if held is None or record.trials >= held.trials:
                deepest[record.key] = record
        return deepest

    def compact(self) -> int:
        """Rewrite the log atomically, dropping unreadable lines.

        Keeps every (key, trials) checkpoint — the deepening ladder is
        load-bearing — but collapses duplicate depths to the latest
        append.  Returns the number of lines removed.  The rewrite goes
        through a temp file + ``os.replace`` so a crash mid-compaction
        leaves the original log intact.  Runs under the store lock so
        concurrent appends either land before the snapshot (and are
        kept) or wait for the new inode (and are never lost).
        """
        with _StoreLock(self.path):
            records = self.scan().records
            kept: Dict[tuple, LabRecord] = {}
            for record in records:
                kept[(record.key, record.trials)] = record
            before = 0
            if self.path.exists():
                with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
                    before = sum(1 for line in fh if line.strip())
            ordered = sorted(kept.values(), key=lambda r: (r.key, r.trials))
            tmp = self.path.with_suffix(".jsonl.tmp")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in ordered:
                    fh.write(record.to_line())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            return before - len(ordered)
