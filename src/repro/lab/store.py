"""Durable experiment results: a sharded, indexed, append-only JSONL store.

One :class:`ResultStore` owns a directory.  Keys route to
``shards/<prefix>/results.jsonl`` by the stable prefix function
:func:`repro.lab.shards.shard_prefix`; a legacy flat ``results.jsonl``
at the root (the pre-shard layout) is still read transparently and is
absorbed into the shards by the first :meth:`ResultStore.compact`.
Every data line is one of:

* a :class:`LabRecord` — a *cumulative checkpoint*: "after ``trials``
  trials of the run keyed ``key``, ``accepted`` of them accepted".
  Checkpoints form a per-key deepening ladder (1 000, 10 000, ...) and
  any rung can later serve — or seed the continuation of — a request
  at that depth;
* a :class:`ControlRecord` — an append-only policy record carrying a
  ``control`` kind: ``tombstone`` (eviction: masks every earlier
  checkpoint of its key until compaction removes both), ``claim`` (a
  lease: ``owner`` holds ``key`` for ``ttl_s`` seconds) or ``release``.
  Readers that predate control records skip them as unreadable lines —
  eviction and leasing compose with corruption tolerance by design.

Durability properties:

* **atomic appends** — each record is serialized to one line and
  written with a single ``os.write`` on an ``O_APPEND`` descriptor,
  under an advisory ``flock`` where the platform has one, so
  concurrent writers interleave whole lines, never bytes;
* **corruption tolerance** — the reader skips lines that are not valid
  JSON or miss required fields (a torn final line from a crashed
  writer, editor damage) and reports how many it skipped via the
  per-call :attr:`StoreScan.corrupt_lines` instead of failing the
  load;
* **schema versioning** — every line carries ``schema``; lines from a
  *newer* schema than this code understands are skipped, not
  misparsed, so old readers degrade gracefully against new writers;
* **verified index** — each shard carries a sidecar ``index.json``
  (key → deepest-checkpoint byte offset), rebuilt by compaction.  A
  keyed read serves from one index lookup + one seek, but every served
  entry is re-parsed and cross-checked; any disagreement with the data
  file discards the index and falls back to a scan.  A stale index can
  cost a re-scan, never a wrong rung.

Locking contract (enforced by the ``lock-discipline`` project rule):
every mutation of a data file — the ``os.write`` appends (checkpoints,
tombstones, leases), the compaction's ``os.replace`` publishes of the
data file and its index — executes under that file's sidecar
:class:`_StoreLock`.  Lock order is always legacy-before-shard, and no
path takes two shard locks at once, so there is no deadlock cycle.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..obs import get_registry
from ..obs.clock import perf_counter, wall_time
from .shards import (
    IndexEntry,
    ShardIndex,
    index_path,
    load_index,
    shard_prefix,
)

#: Version written into every record; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: Fields a line must carry to be a readable checkpoint record.
_REQUIRED = ("schema", "key", "spec", "trials", "accepted", "backend")

#: Data file name, shared by the legacy flat layout and every shard.
DATA_NAME = "results.jsonl"

#: Control-record kinds this build understands.
CONTROL_KINDS = ("tombstone", "claim", "release")

#: Default lease duration for :meth:`ResultStore.claim`.
DEFAULT_LEASE_TTL_S = 300.0

#: Sentinel for "the index could not answer" (distinct from "the index
#: answered: no record stored").
_INDEX_MISS = object()


@dataclass(frozen=True)
class LabRecord:
    """One cumulative checkpoint of one experiment."""

    key: str
    spec: Dict[str, Any]
    trials: int
    accepted: int
    backend: str
    elapsed_s: float = 0.0
    schema: int = SCHEMA_VERSION

    @property
    def probability(self) -> float:
        return self.accepted / self.trials

    def to_line(self) -> str:
        """One JSON line; ``allow_nan=False`` keeps the file parseable."""
        return json.dumps(asdict(self), sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_line(cls, line: str) -> Optional["LabRecord"]:
        """Parse one line; ``None`` for corrupt or foreign-schema lines."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict):
            return None
        return cls.from_data(data)

    @classmethod
    def from_data(cls, data: Dict[str, Any]) -> Optional["LabRecord"]:
        """Validate one decoded line object; ``None`` when unreadable."""
        if any(f not in data for f in _REQUIRED):
            return None
        if not isinstance(data["schema"], int) or data["schema"] > SCHEMA_VERSION:
            return None
        try:
            record = cls(
                key=str(data["key"]),
                spec=dict(data["spec"]),
                trials=int(data["trials"]),
                accepted=int(data["accepted"]),
                backend=str(data["backend"]),
                elapsed_s=float(data.get("elapsed_s", 0.0)),
                schema=int(data["schema"]),
            )
        except (TypeError, ValueError):
            return None
        # Range checks: a parseable line with impossible counts is just
        # as corrupt as a torn one, and consumers (Wilson intervals,
        # deepening arithmetic) must never see it.
        if record.trials <= 0 or not 0 <= record.accepted <= record.trials:
            return None
        return record


@dataclass(frozen=True)
class ControlRecord:
    """One append-only policy record: tombstone, lease claim, or release.

    Control lines share the data files with checkpoints but carry a
    ``control`` kind instead of counts.  ``stamp`` is a wall-clock
    export timestamp (the eviction policy ages against it); it never
    feeds seeds, keys, or counts.
    """

    control: str  # one of CONTROL_KINDS
    key: str
    stamp: float
    owner: str = ""
    ttl_s: float = 0.0
    schema: int = SCHEMA_VERSION

    def to_line(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, allow_nan=False) + "\n"

    def active_at(self, now: float) -> bool:
        """Is this claim still unexpired at *now*?  (claims only)"""
        return self.control == "claim" and self.stamp + self.ttl_s > now

    @classmethod
    def from_data(cls, data: Dict[str, Any]) -> Optional["ControlRecord"]:
        """Validate one decoded control line; ``None`` when unreadable."""
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            return None
        try:
            record = cls(
                control=str(data["control"]),
                key=str(data["key"]),
                stamp=float(data["stamp"]),
                owner=str(data.get("owner", "")),
                ttl_s=float(data.get("ttl_s", 0.0)),
                schema=schema,
            )
        except (KeyError, TypeError, ValueError):
            return None
        if record.control not in CONTROL_KINDS or not record.key:
            return None
        if record.stamp < 0.0 or record.ttl_s < 0.0:
            return None
        if record.control == "claim" and (not record.owner or record.ttl_s <= 0):
            return None
        if record.control == "release" and not record.owner:
            return None
        return record


#: One parsed data line: a checkpoint or a control record.
StoreEvent = Union[LabRecord, ControlRecord]


def _parse_line(line: str) -> Optional[StoreEvent]:
    """Classify one line; ``None`` counts as corrupt."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict):
        return None
    if "control" in data:
        return ControlRecord.from_data(data)
    return LabRecord.from_data(data)


def _apply_controls(
    events: Iterable[StoreEvent],
) -> Tuple[List[LabRecord], List[ControlRecord], int]:
    """Fold control records over an event stream, in order.

    A tombstone masks every *earlier* checkpoint of its key (later
    re-computed checkpoints serve again — eviction forgets, it does
    not ban).  Returns ``(visible records, controls, masked count)``.
    """
    records: List[LabRecord] = []
    controls: List[ControlRecord] = []
    masked = 0
    for event in events:
        if isinstance(event, LabRecord):
            records.append(event)
            continue
        controls.append(event)
        if event.control == "tombstone":
            kept = [r for r in records if r.key != event.key]
            masked += len(records) - len(kept)
            records = kept
    return records, controls, masked


def _active_leases(
    controls: Iterable[ControlRecord], now: float
) -> Dict[str, ControlRecord]:
    """The claims still held at *now*: claimed, unreleased, unexpired.

    Replayed in append order: a later claim renews (or re-owns) a
    key; a release by the holding owner clears it.
    """
    held: Dict[str, ControlRecord] = {}
    for record in controls:
        if record.control == "claim":
            held[record.key] = record
        elif record.control == "release":
            current = held.get(record.key)
            if current is not None and current.owner == record.owner:
                del held[record.key]
    return {key: rec for key, rec in held.items() if rec.active_at(now)}


def _flock(fd: int, lock: bool) -> None:
    """Advisory whole-file lock; a no-op where ``fcntl`` is missing."""
    try:
        import fcntl
    except ImportError:  # non-POSIX
        return
    fcntl.flock(fd, fcntl.LOCK_EX if lock else fcntl.LOCK_UN)


class _StoreLock:
    """Mutual exclusion between writers via a sidecar lock file.

    The lock lives in ``results.jsonl.lock``, *not* the data file:
    :meth:`ResultStore.compact` replaces the data file's inode, so a
    lock taken on the data file itself would leave a window where an
    appender holds the old inode while the compactor publishes the new
    one — and the append would vanish.  The sidecar is never replaced,
    so every writer serializes on the same inode forever.
    """

    def __init__(self, data_path: Path) -> None:
        self._path = data_path.with_name(data_path.name + ".lock")
        self._fd: Optional[int] = None

    def __enter__(self) -> "_StoreLock":
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self._path, os.O_WRONLY | os.O_CREAT, 0o644)
        _flock(self._fd, True)
        return self

    def __exit__(self, *exc) -> None:
        # Explicit guard, not an assert: under ``python -O`` asserts are
        # stripped, and a double-exit would then reach ``_flock(None)``
        # (TypeError) while leaking the descriptor.  Swapping the field
        # first makes unlock/close happen at most once however many
        # times __exit__ runs.
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            _flock(fd, False)
        finally:
            os.close(fd)


@dataclass(frozen=True)
class _Shard:
    """One shard's data file: the append primitive every writer shares."""

    path: Path

    def append_payload(self, payload: bytes) -> None:
        """Durably append pre-serialized line(s) in one atomic write.

        The data file is opened *inside* the store lock so an append
        can never land on an inode a compaction is about to retire;
        one ``os.write`` keeps multi-line payloads (bulk imports,
        tombstone batches) contiguous.
        """
        with _StoreLock(self.path):
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)


@dataclass(frozen=True)
class StoreScan:
    """One full read of the store: visible records plus scan stats.

    Returned by :meth:`ResultStore.scan` so corruption reporting is
    per-call state: a caller's count can never be clobbered by a later
    query's internal re-scan.  ``controls`` carries the policy records
    the read saw (in order); ``masked_records`` counts checkpoints
    hidden by tombstones.
    """

    records: List[LabRecord]
    corrupt_lines: int
    controls: List[ControlRecord] = field(default_factory=list)
    masked_records: int = 0


@dataclass(frozen=True)
class StoreStatus:
    """Summary counts for status surfaces (CLI, service stats).

    ``source`` says how the numbers were produced: ``"index"`` (every
    shard served by its sidecar index — the sub-second path),
    ``"scan"`` (no index helped) or ``"mixed"``.
    """

    experiments: int
    checkpoints: int
    corrupt_lines: int
    stored_trials: int
    shards: int
    indexed_shards: int
    active_leases: int
    legacy_records: int
    source: str

    def to_document(self) -> Dict[str, Any]:
        return dict(vars(self))


@dataclass
class ResultStore:
    """Sharded JSON-lines store of :class:`LabRecord` checkpoints.

    Construct with a directory path (created on demand).  Writes
    always go to ``shards/<prefix>/results.jsonl``; a legacy flat
    ``results.jsonl`` at the root is read-merged transparently (legacy
    lines order before shard lines) and absorbed into the shards by
    the first :meth:`compact`.  Keyed reads (:meth:`deepest`) serve
    from the per-shard index when one is fresh — one lookup + one
    verified seek — and fall back to scanning one shard otherwise.
    """

    root: Union[str, Path]
    #: Corruption count from the most recent *explicit* :meth:`load`
    #: call only.  Internal scans (``checkpoints``, ``deepest``,
    #: ``latest_by_key``, ``compact``) never touch it — use
    #: :meth:`scan` when you need records and stats together.
    corrupt_lines: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- layout --------------------------------------------------------

    @property
    def path(self) -> Path:
        """The legacy flat data file (pre-shard layout), read-merged."""
        return Path(self.root) / DATA_NAME

    @property
    def shards_root(self) -> Path:
        """The directory holding one subdirectory per shard prefix."""
        return Path(self.root) / "shards"

    def shard_path(self, key: str) -> Path:
        """The data file *key* routes to."""
        return self.shards_root / shard_prefix(key) / DATA_NAME

    def _shard(self, key: str) -> _Shard:
        return _Shard(self.shard_path(key))

    def _shard_for_prefix(self, prefix: str) -> _Shard:
        return _Shard(self.shards_root / prefix / DATA_NAME)

    def _shard_dirs(self) -> List[Path]:
        if not self.shards_root.exists():
            return []
        return sorted(p for p in self.shards_root.iterdir() if p.is_dir())

    def _data_files(self) -> List[Path]:
        """Every data file, legacy first then shards in prefix order."""
        files = [self.path] if self.path.exists() else []
        for shard_dir in self._shard_dirs():
            data = shard_dir / DATA_NAME
            if data.exists():
                files.append(data)
        return files

    # -- reading -------------------------------------------------------

    def _read_events(
        self, path: Path, start: int = 0
    ) -> Tuple[List[StoreEvent], int]:
        """Parse a data file (or its tail from byte *start*).

        Unreadable lines are counted, never raised: every failure mode
        down to a vanished file reads as "no events".
        """
        try:
            with open(path, "rb") as fh:
                if start:
                    fh.seek(start)
                raw = fh.read()
        except OSError:
            return [], 0
        events: List[StoreEvent] = []
        corrupt = 0
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            event = _parse_line(line)
            if event is None:
                corrupt += 1
            else:
                events.append(event)
        return events, corrupt

    def _scan_file(self, path: Path) -> Tuple[List[StoreEvent], int]:
        """One *full* read of one data file — the scan choke point.

        Every whole-file read in the store funnels through here, so
        tests (and the index's O(1)-read gate) can count scans by
        counting calls.
        """
        if not path.exists():
            return [], 0
        label = "legacy" if path == self.path else path.parent.name
        get_registry().counter("lab.store.file_scans", shard=label).inc()
        return self._read_events(path)

    def scan(self) -> StoreScan:
        """One full read: visible checkpoints plus this scan's stats.

        Merges the legacy flat file (first) with every shard (prefix
        order); within a file, append order is preserved — and a key's
        checkpoints all live in one shard, so per-key order is total.
        Unreadable lines (torn writes, foreign schemas, hand damage)
        are skipped and counted in the returned
        :attr:`StoreScan.corrupt_lines` — per-call state, immune to
        later queries re-scanning the files.
        """
        events: List[StoreEvent] = []
        corrupt = 0
        for data in self._data_files():
            found, bad = self._scan_file(data)
            events.extend(found)
            corrupt += bad
        records, controls, masked = _apply_controls(events)
        return StoreScan(
            records=records,
            corrupt_lines=corrupt,
            controls=controls,
            masked_records=masked,
        )

    def load(self) -> List[LabRecord]:
        """All visible checkpoints, in merged append order.

        Also mirrors the scan's corruption count into
        :attr:`corrupt_lines` for callers of the historical attribute
        API; prefer :meth:`scan` for stats that must survive subsequent
        queries.
        """
        result = self.scan()
        self.corrupt_lines = result.corrupt_lines
        return result.records

    def checkpoints(
        self, key: str, records: Optional[List[LabRecord]] = None
    ) -> List[LabRecord]:
        """This key's checkpoint ladder, shallowest first.

        When the log holds several records at the same depth (a
        re-computed checkpoint), the latest append wins.  Pass
        *records* (e.g. from a :meth:`scan`) to reuse a read; without
        them only the key's own shard (plus any legacy file) is
        scanned — never the whole store.
        """
        if records is None:
            records = self._key_records(key)
        by_trials: Dict[int, LabRecord] = {}
        for record in records:
            if record.key == key:
                by_trials[record.trials] = record
        return [by_trials[t] for t in sorted(by_trials)]

    def _key_records(self, key: str) -> List[LabRecord]:
        """Visible records for one key: legacy file + its shard only."""
        events: List[StoreEvent] = []
        if self.path.exists():
            found, _ = self._scan_file(self.path)
            events.extend(found)
        shard_data = self.shard_path(key)
        if shard_data.exists():
            found, _ = self._scan_file(shard_data)
            events.extend(found)
        records, _, _ = _apply_controls(events)
        return [r for r in records if r.key == key]

    def deepest(self, key: str) -> Optional[LabRecord]:
        """The deepest checkpoint for *key*, or ``None``.

        Serves from the shard's sidecar index when it is fresh: one
        lookup, one verified seek, plus a scan of any post-compaction
        tail — zero full-file scans.  Any disagreement between index
        and data file discards the index and falls back to the ladder
        scan, so a stale index can never serve a wrong rung.
        """
        hit = self._indexed_deepest(key)
        if hit is not _INDEX_MISS:
            return hit  # type: ignore[return-value]
        ladder = self.checkpoints(key)
        return ladder[-1] if ladder else None

    def _indexed_deepest(self, key: str):
        """Index fast path: a record / ``None`` answer, or ``_INDEX_MISS``."""
        registry = get_registry()
        if self.path.exists():
            # Unmigrated legacy data could hold deeper rungs the index
            # has never seen; only a scan is authoritative.
            registry.counter("lab.store.index.misses").inc()
            return _INDEX_MISS
        shard_dir = self.shards_root / shard_prefix(key)
        data = shard_dir / DATA_NAME
        doc = load_index(shard_dir)
        if doc is None:
            if data.exists():
                registry.counter("lab.store.index.misses").inc()
                return _INDEX_MISS
            return None  # no shard file at all: definitively nothing stored
        try:
            size = os.stat(data).st_size
        except OSError:
            size = 0
        if size < doc.indexed_bytes:
            # The file shrank below what the index describes — a
            # truncation or an old-code rewrite.  The document is void.
            registry.counter("lab.store.index.discarded").inc()
            return _INDEX_MISS
        current: Optional[LabRecord] = None
        entry = doc.entries.get(key)
        if entry is not None:
            current = self._verify_entry(data, key, entry)
            if current is None:
                registry.counter("lab.store.index.discarded").inc()
                return _INDEX_MISS
        if size > doc.indexed_bytes:
            # Post-compaction tail: scan only the appended bytes and
            # fold this key's events on top of the indexed answer.
            tail_events, _ = self._read_events(data, start=doc.indexed_bytes)
            for event in tail_events:
                if event.key != key:
                    continue
                if isinstance(event, ControlRecord):
                    if event.control == "tombstone":
                        current = None
                elif current is None or event.trials >= current.trials:
                    current = event
        registry.counter("lab.store.index.hits").inc()
        return current

    def _verify_entry(
        self, data: Path, key: str, entry: IndexEntry
    ) -> Optional[LabRecord]:
        """Seek-and-reparse one index entry; ``None`` on any mismatch."""
        try:
            with open(data, "rb") as fh:
                fh.seek(entry.offset)
                raw = fh.read(entry.length)
        except OSError:
            return None
        record = LabRecord.from_line(raw.decode("utf-8", errors="replace"))
        if (
            record is None
            or record.key != key
            or record.trials != entry.trials
            or record.accepted != entry.accepted
        ):
            return None
        return record

    def latest_by_key(
        self, records: Optional[List[LabRecord]] = None
    ) -> Dict[str, LabRecord]:
        """Deepest checkpoint per experiment, for status/report views."""
        if records is None:
            records = self.scan().records
        deepest: Dict[str, LabRecord] = {}
        for record in records:
            held = deepest.get(record.key)
            if held is None or record.trials >= held.trials:
                deepest[record.key] = record
        return deepest

    def status(self, *, now: Optional[float] = None) -> StoreStatus:
        """Store-wide summary, served from shard indexes where fresh.

        A shard whose index covers exactly the data file's bytes is
        summarized from the index alone (no file scan); dirty shards
        and any legacy flat file are scanned.  On a fully compacted
        store this is pure index reads — the ``lab status``
        sub-second-at-10^5-keys path.
        """
        now = wall_time() if now is None else float(now)
        deepest: Dict[str, int] = {}
        checkpoints = 0
        corrupt = 0
        leased: set = set()
        legacy_records = 0
        indexed = 0
        scanned = 0

        def absorb_scan(path: Path) -> int:
            nonlocal checkpoints, corrupt
            events, bad = self._scan_file(path)
            records, controls, _ = _apply_controls(events)
            corrupt += bad
            checkpoints += len(records)
            for record in records:
                if record.trials >= deepest.get(record.key, 0):
                    deepest[record.key] = record.trials
            leased.update(_active_leases(controls, now))
            return len(records)

        if self.path.exists():
            scanned += 1
            legacy_records = absorb_scan(self.path)
        for shard_dir in self._shard_dirs():
            data = shard_dir / DATA_NAME
            doc = load_index(shard_dir)
            try:
                size = os.stat(data).st_size
            except OSError:
                size = 0
            if doc is not None and size == doc.indexed_bytes:
                indexed += 1
                checkpoints += doc.lines
                for key, entry in doc.entries.items():
                    if entry.trials >= deepest.get(key, 0):
                        deepest[key] = entry.trials
                for key, lease in doc.leases.items():
                    try:
                        active = float(lease["stamp"]) + float(lease["ttl_s"]) > now
                    except (KeyError, TypeError, ValueError):
                        active = False
                    if active:
                        leased.add(key)
            elif data.exists():
                scanned += 1
                absorb_scan(data)
        if indexed and scanned:
            source = "mixed"
        elif indexed:
            source = "index"
        else:
            source = "scan"
        return StoreStatus(
            experiments=len(deepest),
            checkpoints=checkpoints,
            corrupt_lines=corrupt,
            stored_trials=sum(deepest.values()),
            shards=len(self._shard_dirs()),
            indexed_shards=indexed,
            active_leases=len(leased),
            legacy_records=legacy_records,
            source=source,
        )

    # -- writing -------------------------------------------------------

    def append(self, record: LabRecord) -> None:
        """Durably append one checkpoint (atomic at line granularity)."""
        payload = record.to_line().encode("utf-8")
        self._shard(record.key).append_payload(payload)
        get_registry().counter(
            "lab.store.appends", shard=shard_prefix(record.key)
        ).inc()

    def append_many(self, records: Iterable[LabRecord]) -> int:
        """Bulk import: group by shard, one locked write+fsync per shard.

        Orders of magnitude cheaper than per-record :meth:`append` for
        fleet-scale seeding (the 10^5-key bench path); each shard's
        batch is still a single contiguous ``os.write``.
        """
        by_prefix: Dict[str, List[bytes]] = {}
        count = 0
        for record in records:
            by_prefix.setdefault(shard_prefix(record.key), []).append(
                record.to_line().encode("utf-8")
            )
            count += 1
        registry = get_registry()
        for prefix in sorted(by_prefix):
            self._shard_for_prefix(prefix).append_payload(
                b"".join(by_prefix[prefix])
            )
            registry.counter("lab.store.appends", shard=prefix).inc(
                len(by_prefix[prefix])
            )
        return count

    # -- leases --------------------------------------------------------

    def claim(
        self,
        key: str,
        owner: str,
        *,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        now: Optional[float] = None,
    ) -> bool:
        """Atomically claim a lease on *key* for *owner*.

        The check-and-append runs under the shard's :class:`_StoreLock`,
        so two processes racing for one key serialize on the same
        ``flock`` — exactly one sees ``True``.  A holder re-claiming
        renews its lease.  This is the cross-interpreter coalescing
        primitive: N workers claim before running, and only the winner
        executes trials for the key.
        """
        if not owner:
            raise ValueError("claim needs a non-empty owner")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        now = wall_time() if now is None else float(now)
        shard = self._shard(key)
        registry = get_registry()
        with _StoreLock(shard.path):
            events, _ = self._read_events(shard.path)
            _, controls, _ = _apply_controls(events)
            held = _active_leases(controls, now).get(key)
            if held is not None and held.owner != owner:
                registry.counter("lab.store.leases", action="denied").inc()
                return False
            payload = ControlRecord(
                control="claim", key=key, stamp=now, owner=owner,
                ttl_s=float(ttl_s),
            ).to_line().encode("utf-8")
            fd = os.open(shard.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
        registry.counter("lab.store.leases", action="claimed").inc()
        return True

    def release(self, key: str, owner: str, *, now: Optional[float] = None) -> None:
        """Release *owner*'s lease on *key* (append-only, idempotent)."""
        if not owner:
            raise ValueError("release needs a non-empty owner")
        now = wall_time() if now is None else float(now)
        record = ControlRecord(control="release", key=key, stamp=now, owner=owner)
        self._shard(key).append_payload(record.to_line().encode("utf-8"))
        get_registry().counter("lab.store.leases", action="released").inc()

    def lease_for(
        self, key: str, *, now: Optional[float] = None
    ) -> Optional[ControlRecord]:
        """The active lease on *key*, or ``None``."""
        now = wall_time() if now is None else float(now)
        events, _ = self._read_events(self.shard_path(key))
        _, controls, _ = _apply_controls(events)
        return _active_leases(controls, now).get(key)

    def active_leases(
        self, *, now: Optional[float] = None
    ) -> Dict[str, ControlRecord]:
        """Every active lease in the store (full read — maintenance use)."""
        now = wall_time() if now is None else float(now)
        return _active_leases(self.scan().controls, now)

    # -- eviction ------------------------------------------------------

    def evict(
        self,
        *,
        ttl_seconds: Optional[float] = None,
        max_keys: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Append eviction tombstones per TTL and/or LRU policy.

        Only *indexed* keys are candidates — a key's age is its index
        stamp (when its deepest rung last changed), so nothing is
        evictable before a compaction has seen it — and three classes
        are always protected: keys with an active lease, keys with
        post-compaction tail activity, and (for LRU) the newest keys
        up to *max_keys*.  Tombstones are appended under the shard
        lock **after re-checking leases under that same lock**, so a
        claim racing an eviction serializes: eviction never removes a
        key holding an active lease.

        Returns the evicted keys.  Eviction is append-only — the bytes
        are reclaimed by the next :meth:`compact`.
        """
        if ttl_seconds is None and max_keys is None:
            return []
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ValueError("ttl_seconds must be non-negative")
        if max_keys is not None and max_keys < 0:
            raise ValueError("max_keys must be non-negative")
        now = wall_time() if now is None else float(now)
        start = perf_counter()
        candidates: List[Tuple[float, str, str]] = []  # (stamp, key, prefix)
        total_keys = 0
        for shard_dir in self._shard_dirs():
            data = shard_dir / DATA_NAME
            events, _ = self._scan_file(data)
            records, controls, _ = _apply_controls(events)
            live = {}
            for record in records:
                live[record.key] = record
            total_keys += len(live)
            leases = _active_leases(controls, now)
            doc = load_index(shard_dir)
            if doc is None:
                continue
            try:
                size = os.stat(data).st_size
            except OSError:
                continue
            if size < doc.indexed_bytes:
                continue  # stale index: no trustworthy ages in this shard
            tail_events, _ = self._read_events(data, start=doc.indexed_bytes)
            # Post-compaction checkpoints make a key "newest" (no index
            # stamp yet → not evictable); control records are not data
            # activity — lease protection is the lease check's job.
            tail_keys = {
                event.key
                for event in tail_events
                if isinstance(event, LabRecord)
            }
            for key in live:
                if key in leases or key in tail_keys:
                    continue
                entry = doc.entries.get(key)
                if entry is None:
                    continue
                candidates.append((entry.stamp, key, shard_dir.name))
        chosen: Dict[str, str] = {}
        if ttl_seconds is not None:
            for stamp, key, prefix in candidates:
                if now - stamp >= ttl_seconds:
                    chosen[key] = prefix
        if max_keys is not None and total_keys - len(chosen) > max_keys:
            for stamp, key, prefix in sorted(candidates):
                if total_keys - len(chosen) <= max_keys:
                    break
                if key not in chosen:
                    chosen[key] = prefix
        by_prefix: Dict[str, List[str]] = {}
        for key, prefix in chosen.items():
            by_prefix.setdefault(prefix, []).append(key)
        evicted: List[str] = []
        registry = get_registry()
        for prefix in sorted(by_prefix):
            written = self._append_tombstones(prefix, sorted(by_prefix[prefix]), now)
            evicted.extend(written)
            if written:
                registry.counter("lab.store.evictions", shard=prefix).inc(
                    len(written)
                )
        registry.histogram("lab.store.evict.seconds").observe(
            perf_counter() - start
        )
        return sorted(evicted)

    def _append_tombstones(
        self, prefix: str, keys: List[str], now: float
    ) -> List[str]:
        """Tombstone *keys* in one shard, re-checking leases under lock."""
        shard = self._shard_for_prefix(prefix)
        with _StoreLock(shard.path):
            events, _ = self._read_events(shard.path)
            _, controls, _ = _apply_controls(events)
            leases = _active_leases(controls, now)
            safe = [key for key in keys if key not in leases]
            if not safe:
                return []
            payload = b"".join(
                ControlRecord(control="tombstone", key=key, stamp=now)
                .to_line()
                .encode("utf-8")
                for key in safe
            )
            fd = os.open(shard.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
        return safe

    # -- compaction and migration --------------------------------------

    def compact(
        self, prefix: Optional[str] = None, *, now: Optional[float] = None
    ) -> int:
        """Rewrite data files atomically and rebuild their indexes.

        Per shard: drops unreadable lines, applies tombstones (the
        masked checkpoints and the tombstones themselves are physically
        removed), collapses duplicate depths to the latest append —
        the (key, trials) deepening ladder itself is load-bearing and
        kept — re-writes still-active lease claims, and publishes a
        fresh sidecar index via temp file + ``os.replace``.  With
        *prefix* only that shard is compacted (the live background
        maintenance op — appends to other shards are never blocked);
        without it, any legacy flat file is first absorbed into the
        shards, then every shard is compacted.

        Returns the number of lines removed.  A crash at any point
        leaves either the old or the new inode — never a torn file.
        """
        now = wall_time() if now is None else float(now)
        removed = 0
        if prefix is None:
            legacy_lines, moved = self._absorb_legacy()
            removed += legacy_lines - moved
            shard_dirs = self._shard_dirs()
        else:
            shard_dir = self.shards_root / prefix
            shard_dirs = [shard_dir] if shard_dir.is_dir() else []
        for shard_dir in shard_dirs:
            removed += self._compact_shard(shard_dir, now)
        return removed

    def migrate(self) -> int:
        """Absorb a legacy flat store into shards and compact them all.

        Idempotent and crash-safe (a crash mid-move leaves duplicate
        ``(key, trials)`` lines, which the read path dedupes and the
        next compaction removes).  Returns the number of records moved
        out of the legacy file.  Every key's deepest checkpoint is
        preserved *byte-identically*: records are re-emitted via
        :meth:`LabRecord.to_line`, the same canonical serialization
        that wrote them.
        """
        _, moved = self._absorb_legacy()
        self.compact()
        return moved

    def _absorb_legacy(self) -> Tuple[int, int]:
        """Move the legacy flat file's events into their shards.

        Returns ``(legacy nonblank lines, events moved)``; the
        difference is the corruption dropped by the move.  Shard
        appends happen *before* the legacy file is removed, so a crash
        between the two duplicates records instead of losing them.
        """
        if not self.path.exists():
            return 0, 0
        with _StoreLock(self.path):
            events, corrupt = self._scan_file(self.path)
            by_prefix: Dict[str, List[bytes]] = {}
            for event in events:
                by_prefix.setdefault(shard_prefix(event.key), []).append(
                    event.to_line().encode("utf-8")
                )
            for prefix in sorted(by_prefix):
                self._shard_for_prefix(prefix).append_payload(
                    b"".join(by_prefix[prefix])
                )
            os.remove(self.path)
        return len(events) + corrupt, len(events)

    def _compact_shard(self, shard_dir: Path, now: float) -> int:
        """Compact one shard and publish its index, under its lock."""
        data = shard_dir / DATA_NAME
        if not data.exists():
            return 0
        start = perf_counter()
        with _StoreLock(data):
            events, corrupt = self._scan_file(data)
            before = len(events) + corrupt
            records, controls, _ = _apply_controls(events)
            kept: Dict[Tuple[str, int], LabRecord] = {}
            for record in records:
                kept[(record.key, record.trials)] = record
            ordered = sorted(kept.values(), key=lambda r: (r.key, r.trials))
            leases = _active_leases(controls, now)
            old_doc = load_index(shard_dir)
            entries: Dict[str, IndexEntry] = {}
            offset = 0
            tmp = data.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in ordered:
                    line = record.to_line()
                    length = len(line.encode("utf-8"))
                    # Sorted by (key, trials): the last write per key
                    # is its deepest rung, which is what the entry
                    # must point at.
                    stamp = now
                    if old_doc is not None:
                        old = old_doc.entries.get(record.key)
                        if (
                            old is not None
                            and old.trials == record.trials
                            and old.accepted == record.accepted
                        ):
                            stamp = old.stamp  # unchanged rung keeps its age
                    entries[record.key] = IndexEntry(
                        offset=offset,
                        length=length,
                        trials=record.trials,
                        accepted=record.accepted,
                        stamp=stamp,
                    )
                    fh.write(line)
                    offset += length
                lease_lines = [leases[key].to_line() for key in sorted(leases)]
                for line in lease_lines:
                    fh.write(line)
                    offset += len(line.encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, data)
            doc = ShardIndex(
                indexed_bytes=offset,
                lines=len(ordered),
                built_stamp=now,
                entries=entries,
                leases={
                    key: {
                        "owner": lease.owner,
                        "stamp": lease.stamp,
                        "ttl_s": lease.ttl_s,
                    }
                    for key, lease in leases.items()
                },
            )
            index_tmp = index_path(shard_dir).with_suffix(".json.tmp")
            with open(index_tmp, "w", encoding="utf-8") as fh:
                json.dump(doc.to_document(), fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(index_tmp, index_path(shard_dir))
            after = len(ordered) + len(lease_lines)
        registry = get_registry()
        registry.counter("lab.store.compactions", shard=shard_dir.name).inc()
        registry.histogram("lab.store.compact.seconds").observe(
            perf_counter() - start
        )
        return before - after
