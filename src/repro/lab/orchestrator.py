"""The orchestrator: cached, deepenable experiment execution.

``Orchestrator.run(spec)`` is the lab's single entry point.  Three
outcomes, decided against the store's checkpoint ladder for the spec's
content key:

* **cache** — a checkpoint at exactly ``spec.trials`` exists: the
  stored counts are served with *zero* engine work;
* **deepened** — a shallower checkpoint exists: only the missing
  trials run, from the exact per-trial child seeds the unsharded fresh
  run would have drawn (``trial_seed_plan(seed, trials)[done:]``), and
  the counts merge seed-identically to one fresh ``trials``-trial run;
* **fresh** — nothing stored: the full seed plan runs.

Either way a new cumulative checkpoint is appended, so the store only
ever grows deeper and every depth ever computed stays servable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..analysis.bounds import Z95, trials_for_halfwidth, wilson_halfwidth
from ..engine.api import AcceptanceEstimate, get_backend, trial_seed_plan
from ..obs import get_registry, span
from .spec import ExperimentSpec
from .store import LabRecord, ResultStore

#: How a run was satisfied (provenance, surfaced by CLI and benchmarks).
SOURCES = ("cache", "deepened", "fresh")


@dataclass(frozen=True)
class LabRunResult:
    """An :class:`AcceptanceEstimate` plus its provenance."""

    estimate: AcceptanceEstimate
    source: str  # one of SOURCES
    trials_executed: int  # engine trials actually run for this call
    base_trials: int  # depth of the checkpoint this run extended
    key: str

    @property
    def cached(self) -> bool:
        return self.source == "cache"


@dataclass(frozen=True)
class PrecisionRunResult:
    """Outcome of a precision-mode run (:meth:`Orchestrator.run_to_precision`).

    ``trials_executed`` sums the engine trials across *all* deepening
    rounds — on a fresh key it equals the final depth exactly, because
    every round runs only its seed-plan suffix.  ``executed_rounds``
    counts the rounds that reached the engine (cache-served rounds are
    free), which is what the service reports as engine executions.
    """

    final: LabRunResult  # the round that met the target
    halfwidth: float  # achieved Wilson half-width at the final depth
    target_halfwidth: float
    rounds: int  # orchestrator runs issued (>= 1)
    executed_rounds: int  # rounds that executed > 0 engine trials
    trials_executed: int  # engine trials summed across rounds

    @property
    def estimate(self) -> AcceptanceEstimate:
        return self.final.estimate

    @property
    def key(self) -> str:
        return self.final.key


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one background store-maintenance pass."""

    evicted_keys: int  # tombstones appended this pass
    removed_lines: int  # lines reclaimed by compaction
    shards: int
    indexed_shards: int  # shards whose sidecar index is fresh (== shards after a pass)
    experiments: int
    checkpoints: int
    active_leases: int
    elapsed_s: float

    def to_document(self) -> dict:
        return dict(vars(self))


class Orchestrator:
    """Runs :class:`ExperimentSpec`\\ s through a :class:`ResultStore`.

    Accepts a store instance or a directory path.  Backend resolution
    happens per run from ``spec.backend`` — the store is backend-blind
    (the seeding contract makes counts backend-invariant), so one store
    serves requests from every backend interchangeably.

    *max_batch_bytes* is an execution detail like the backend itself:
    it bounds the dense working set of every run this orchestrator
    issues (deepening continuations included) without entering the
    spec's identity — tiled counts are byte-identical to untiled ones.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.max_batch_bytes = max_batch_bytes

    def _backend(self, spec: ExperimentSpec):
        options = (
            {"max_batch_bytes": self.max_batch_bytes}
            if self.max_batch_bytes is not None
            else {}
        )
        return get_backend(spec.backend, **options)

    def run(self, spec: ExperimentSpec) -> LabRunResult:
        """Satisfy *spec* from the store, deepening or running as needed.

        Args:
            spec: the experiment to satisfy.  ``spec.trials`` is the
                requested depth; ``spec.backend`` only chooses *how*
                missing trials execute (counts are backend-invariant by
                the engine's seeding contract, so it is not part of the
                cache key).

        Returns:
            A :class:`LabRunResult` whose ``source`` says how the
            request was met: ``"cache"`` (exact-depth checkpoint,
            zero engine trials), ``"deepened"`` (only the seed-plan
            suffix ``done..trials`` ran) or ``"fresh"`` (the full plan
            ran).  A new cumulative checkpoint is appended on every
            non-cache outcome.

        Failure modes: backend resolution raises ``ValueError`` for an
        unknown name; store I/O errors (unwritable directory) propagate
        as ``OSError``.  A corrupt store never raises here — unreadable
        checkpoint lines are skipped by the reader, at worst costing a
        re-run of trials that were already paid for.

        >>> import tempfile
        >>> from repro.lab import ExperimentSpec, Orchestrator
        >>> tmp = tempfile.TemporaryDirectory()
        >>> orch = Orchestrator(tmp.name)
        >>> spec = ExperimentSpec(family="member", k=1, trials=60, seed=7)
        >>> r1 = orch.run(spec); (r1.source, r1.trials_executed)
        ('fresh', 60)
        >>> r2 = orch.run(spec); (r2.source, r2.trials_executed)
        ('cache', 0)
        >>> r3 = orch.run(spec.with_trials(100))   # only 60..100 run
        >>> (r3.source, r3.trials_executed, r3.estimate.accepted)
        ('deepened', 40, 100)
        >>> tmp.cleanup()
        """
        with span(
            "lab.run",
            trials=spec.trials,
            recognizer=spec.recognizer,
            backend=spec.backend,
        ):
            result = self._run(spec)
        registry = get_registry()
        registry.counter("lab.runs", source=result.source).inc()
        if result.trials_executed > 0:
            registry.counter("lab.trials_executed").inc(result.trials_executed)
        return result

    def _run(self, spec: ExperimentSpec) -> LabRunResult:
        """The cache/deepen/fresh decision :meth:`run` instruments."""
        registry = get_registry()
        key = spec.key
        scan_start = time.perf_counter()
        with span("lab.store.scan"):
            deepest = self.store.deepest(key)
            if deepest is not None and deepest.trials > spec.trials:
                # Deeper rungs than requested are on record: only the
                # full ladder can say whether the exact depth (or the
                # nearest shallower prefix) is among them.
                ladder = self.store.checkpoints(key)
            else:
                # The common fleet path: the deepest rung (one index
                # lookup + one verified seek on a compacted store) is
                # the exact match or the best deepening base.
                ladder = [deepest] if deepest is not None else []
        registry.histogram("lab.store.scan.seconds").observe(
            time.perf_counter() - scan_start
        )
        for record in ladder:
            if record.trials == spec.trials:
                return LabRunResult(
                    estimate=self._estimate(spec, record),
                    source="cache",
                    trials_executed=0,
                    base_trials=record.trials,
                    key=key,
                )
        base: Optional[LabRecord] = None
        for record in ladder:
            if record.trials < spec.trials:
                base = record  # ladder is sorted: ends at deepest prefix
        done = base.trials if base is not None else 0
        # The continuation seeds: exactly what the unsharded fresh run
        # would draw for trials done..trials (the slice contract).
        seeds = trial_seed_plan(spec.seed, spec.trials)[done:]
        backend = self._backend(spec)
        start = time.perf_counter()
        accepted_new = backend.count_accepted_from_seeds(
            spec.resolve_word(), seeds, spec.recognizer
        )
        elapsed = time.perf_counter() - start
        accepted = accepted_new + (base.accepted if base is not None else 0)
        record = LabRecord(
            key=key,
            spec=spec.to_dict(),
            trials=spec.trials,
            accepted=accepted,
            backend=backend.name,
            elapsed_s=elapsed + (base.elapsed_s if base is not None else 0.0),
        )
        append_start = time.perf_counter()
        with span("lab.store.append"):
            self.store.append(record)
        registry.histogram("lab.store.append.seconds").observe(
            time.perf_counter() - append_start
        )
        return LabRunResult(
            estimate=self._estimate(spec, record),
            source="deepened" if base is not None else "fresh",
            trials_executed=len(seeds),
            base_trials=done,
            key=key,
        )

    def run_to_precision(
        self,
        spec: ExperimentSpec,
        target_halfwidth: float,
        *,
        z: float = Z95,
        max_rounds: int = 12,
        max_trials: Optional[int] = None,
    ) -> PrecisionRunResult:
        """Deepen *spec* until its Wilson half-width meets a target.

        Runs ``spec`` at its requested depth, then — while the Wilson
        interval's half-width (:func:`repro.analysis.bounds.wilson_halfwidth`)
        still exceeds *target_halfwidth* — re-plans the depth from the
        measured frequency (:func:`~repro.analysis.bounds.trials_for_halfwidth`)
        and deepens.  Every round goes through :meth:`run`, so it
        executes only the seed-plan suffix beyond the deepest stored
        checkpoint: on a fresh key the total ``trials_executed`` equals
        the final depth exactly, and a repeat call at the same target
        is a pure cache hit.

        Args:
            spec: the experiment; ``spec.trials`` is the *starting*
                depth (the floor — precision mode only ever deepens).
            target_halfwidth: the half-width to reach, in (0, 1).
            z: normal quantile defining the confidence level.
            max_rounds: safety bound on orchestrator rounds; the
                re-planning loop converges in 2-3 rounds in practice,
                so hitting this indicates something is wrong.
            max_trials: optional hard cap on the planned depth —
                exceeded means ``ValueError`` *before* any further
                trials run, so a too-ambitious target fails fast.

        Raises:
            ValueError: for a target outside (0, 1), or when the next
                planned depth would exceed *max_trials*.
            RuntimeError: when *max_rounds* rounds did not reach the
                target (should not happen: each round's plan is exact
                for the frequency it observed).
        """
        if not 0.0 < target_halfwidth < 1.0:
            raise ValueError("target_halfwidth must lie in (0, 1)")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        rounds = 0
        executed_rounds = 0
        executed = 0
        current = spec
        while True:
            run = self.run(current)
            rounds += 1
            if run.trials_executed > 0:
                executed_rounds += 1
                executed += run.trials_executed
            est = run.estimate
            half = wilson_halfwidth(est.accepted, est.trials, z)
            if half <= target_halfwidth:
                return PrecisionRunResult(
                    final=run,
                    halfwidth=half,
                    target_halfwidth=target_halfwidth,
                    rounds=rounds,
                    executed_rounds=executed_rounds,
                    trials_executed=executed,
                )
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"half-width {half:.4g} > target {target_halfwidth:.4g} "
                    f"after {rounds} rounds ({est.trials} trials)"
                )
            planned = trials_for_halfwidth(target_halfwidth, est.probability, z)
            # The model half-width at the current depth matched the
            # measured one, so planned > est.trials here; max() guards
            # the invariant rather than establishing it.
            next_trials = max(planned, est.trials + 1)
            if max_trials is not None and next_trials > max_trials:
                raise ValueError(
                    f"target half-width {target_halfwidth!r} needs "
                    f"~{next_trials} trials, above max_trials={max_trials}"
                )
            current = current.with_trials(next_trials)

    def maintain(
        self,
        *,
        ttl_seconds: Optional[float] = None,
        max_keys: Optional[int] = None,
    ) -> MaintenanceReport:
        """One background maintenance pass: evict, compact, summarize.

        Eviction appends TTL/LRU tombstones (a key holding an active
        lease is never touched); compaction reclaims the bytes and
        rebuilds every shard's sidecar index, absorbing any legacy
        flat file on the way.  Each shard compacts under its own
        lock, so concurrent :meth:`run` appends are never blocked —
        this is the op the service exposes for live fleets.
        """
        start = time.perf_counter()
        with span("lab.maintain"):
            evicted = self.store.evict(ttl_seconds=ttl_seconds, max_keys=max_keys)
            removed = self.store.compact()
            status = self.store.status()
        elapsed = time.perf_counter() - start
        get_registry().counter("lab.maintenance_runs").inc()
        return MaintenanceReport(
            evicted_keys=len(evicted),
            removed_lines=removed,
            shards=status.shards,
            indexed_shards=status.indexed_shards,
            experiments=status.experiments,
            checkpoints=status.checkpoints,
            active_leases=status.active_leases,
            elapsed_s=elapsed,
        )

    @staticmethod
    def _estimate(spec: ExperimentSpec, record: LabRecord) -> AcceptanceEstimate:
        """Rebuild the engine-shaped estimate a record stands for.

        ``backend`` reports the backend that *computed* the stored
        counts (which, by the seeding contract, carries no statistical
        information — it is provenance only).
        """
        return AcceptanceEstimate(
            word_length=len(spec.resolve_word()),
            trials=record.trials,
            accepted=record.accepted,
            backend=record.backend,
            elapsed_s=record.elapsed_s,
            recognizer=spec.recognizer,
        )
