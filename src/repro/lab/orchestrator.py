"""The orchestrator: cached, deepenable experiment execution.

``Orchestrator.run(spec)`` is the lab's single entry point.  Three
outcomes, decided against the store's checkpoint ladder for the spec's
content key:

* **cache** — a checkpoint at exactly ``spec.trials`` exists: the
  stored counts are served with *zero* engine work;
* **deepened** — a shallower checkpoint exists: only the missing
  trials run, from the exact per-trial child seeds the unsharded fresh
  run would have drawn (``trial_seed_plan(seed, trials)[done:]``), and
  the counts merge seed-identically to one fresh ``trials``-trial run;
* **fresh** — nothing stored: the full seed plan runs.

Either way a new cumulative checkpoint is appended, so the store only
ever grows deeper and every depth ever computed stays servable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..engine.api import AcceptanceEstimate, get_backend, trial_seed_plan
from .spec import ExperimentSpec
from .store import LabRecord, ResultStore

#: How a run was satisfied (provenance, surfaced by CLI and benchmarks).
SOURCES = ("cache", "deepened", "fresh")


@dataclass(frozen=True)
class LabRunResult:
    """An :class:`AcceptanceEstimate` plus its provenance."""

    estimate: AcceptanceEstimate
    source: str  # one of SOURCES
    trials_executed: int  # engine trials actually run for this call
    base_trials: int  # depth of the checkpoint this run extended
    key: str

    @property
    def cached(self) -> bool:
        return self.source == "cache"


class Orchestrator:
    """Runs :class:`ExperimentSpec`\\ s through a :class:`ResultStore`.

    Accepts a store instance or a directory path.  Backend resolution
    happens per run from ``spec.backend`` — the store is backend-blind
    (the seeding contract makes counts backend-invariant), so one store
    serves requests from every backend interchangeably.

    *max_batch_bytes* is an execution detail like the backend itself:
    it bounds the dense working set of every run this orchestrator
    issues (deepening continuations included) without entering the
    spec's identity — tiled counts are byte-identical to untiled ones.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.max_batch_bytes = max_batch_bytes

    def _backend(self, spec: ExperimentSpec):
        options = (
            {"max_batch_bytes": self.max_batch_bytes}
            if self.max_batch_bytes is not None
            else {}
        )
        return get_backend(spec.backend, **options)

    def run(self, spec: ExperimentSpec) -> LabRunResult:
        """Satisfy *spec* from the store, deepening or running as needed."""
        key = spec.key
        ladder = self.store.checkpoints(key)
        for record in ladder:
            if record.trials == spec.trials:
                return LabRunResult(
                    estimate=self._estimate(spec, record),
                    source="cache",
                    trials_executed=0,
                    base_trials=record.trials,
                    key=key,
                )
        base: Optional[LabRecord] = None
        for record in ladder:
            if record.trials < spec.trials:
                base = record  # ladder is sorted: ends at deepest prefix
        done = base.trials if base is not None else 0
        # The continuation seeds: exactly what the unsharded fresh run
        # would draw for trials done..trials (the slice contract).
        seeds = trial_seed_plan(spec.seed, spec.trials)[done:]
        backend = self._backend(spec)
        start = time.perf_counter()
        accepted_new = backend.count_accepted_from_seeds(
            spec.resolve_word(), seeds, spec.recognizer
        )
        elapsed = time.perf_counter() - start
        accepted = accepted_new + (base.accepted if base is not None else 0)
        record = LabRecord(
            key=key,
            spec=spec.to_dict(),
            trials=spec.trials,
            accepted=accepted,
            backend=backend.name,
            elapsed_s=elapsed + (base.elapsed_s if base is not None else 0.0),
        )
        self.store.append(record)
        return LabRunResult(
            estimate=self._estimate(spec, record),
            source="deepened" if base is not None else "fresh",
            trials_executed=len(seeds),
            base_trials=done,
            key=key,
        )

    @staticmethod
    def _estimate(spec: ExperimentSpec, record: LabRecord) -> AcceptanceEstimate:
        """Rebuild the engine-shaped estimate a record stands for.

        ``backend`` reports the backend that *computed* the stored
        counts (which, by the seeding contract, carries no statistical
        information — it is provenance only).
        """
        return AcceptanceEstimate(
            word_length=len(spec.resolve_word()),
            trials=record.trials,
            accepted=record.accepted,
            backend=record.backend,
            elapsed_s=record.elapsed_s,
            recognizer=spec.recognizer,
        )
