"""The ternary alphabet Sigma = {0, 1, #} used throughout the paper.

Words are plain Python strings over these three characters.  This module
centralizes validation and the small encoding helpers shared by the
language layer (:mod:`repro.core.language`), the machines layer and the
streaming layer, so that no other module hand-rolls symbol checks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .errors import AlphabetError

ZERO = "0"
ONE = "1"
HASH = "#"

#: The ternary alphabet of the paper, in canonical order.
SIGMA: tuple[str, str, str] = (ZERO, ONE, HASH)

#: Fast membership set.
_SIGMA_SET = frozenset(SIGMA)

#: Symbol -> small integer code (stable across the library).
SYMBOL_CODE: dict[str, int] = {ZERO: 0, ONE: 1, HASH: 2}

#: Inverse of :data:`SYMBOL_CODE`.
CODE_SYMBOL: dict[int, str] = {v: k for k, v in SYMBOL_CODE.items()}


def is_symbol(ch: str) -> bool:
    """Return True iff *ch* is a single symbol of Sigma."""
    return ch in _SIGMA_SET


def validate_word(word: str) -> str:
    """Return *word* unchanged if it is a word over Sigma, else raise.

    Raises
    ------
    AlphabetError
        If any character of *word* is outside {0, 1, #}.
    """
    for pos, ch in enumerate(word):
        if ch not in _SIGMA_SET:
            raise AlphabetError(
                f"invalid symbol {ch!r} at position {pos}; alphabet is {{0, 1, #}}"
            )
    return word


def is_bitstring(word: str) -> bool:
    """Return True iff *word* is a (possibly empty) string over {0, 1}."""
    return all(ch in (ZERO, ONE) for ch in word)


def validate_bitstring(word: str) -> str:
    """Return *word* unchanged if it is over {0, 1}, else raise AlphabetError."""
    for pos, ch in enumerate(word):
        if ch not in (ZERO, ONE):
            raise AlphabetError(
                f"invalid bit {ch!r} at position {pos}; expected '0' or '1'"
            )
    return word


def bits_to_int(bits: str) -> int:
    """Interpret a bitstring ``b_0 b_1 ... b_{m-1}`` with b_0 the LOW bit.

    The paper indexes strings x = x_0 ... x_{n-1} by position, and the
    Grover index register addresses position i; using position-as-low-bit
    keeps ``x[i] == (bits_to_int(x) >> i) & 1``.
    """
    validate_bitstring(bits)
    value = 0
    for i, ch in enumerate(bits):
        if ch == ONE:
            value |= 1 << i
    return value


def int_to_bits(value: int, length: int) -> str:
    """Inverse of :func:`bits_to_int` for the given *length*.

    Raises
    ------
    ValueError
        If *value* does not fit in *length* bits or is negative.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if length < 0:
        raise ValueError("length must be non-negative")
    if value >> length:
        raise ValueError(f"value {value} does not fit in {length} bits")
    return "".join(ONE if (value >> i) & 1 else ZERO for i in range(length))


def encode_word(word: str) -> list[int]:
    """Encode a Sigma-word as a list of integer codes (0, 1, 2)."""
    validate_word(word)
    return [SYMBOL_CODE[ch] for ch in word]


def decode_word(codes: Sequence[int]) -> str:
    """Inverse of :func:`encode_word`."""
    try:
        return "".join(CODE_SYMBOL[c] for c in codes)
    except KeyError as exc:  # pragma: no cover - defensive
        raise AlphabetError(f"invalid symbol code {exc.args[0]!r}") from exc


def split_hash_fields(word: str) -> list[str]:
    """Split a Sigma-word on '#' into its (possibly empty) fields.

    ``"ab#c#" -> ["ab", "c", ""]`` — the trailing empty field is kept so
    callers can distinguish ``x#`` from ``x``.
    """
    validate_word(word)
    return word.split(HASH)


def iter_symbols(words: Iterable[str]) -> Iterator[str]:
    """Yield the symbols of each word in *words*, validating as it goes."""
    for word in words:
        validate_word(word)
        yield from word
