"""The dense batched backend: all trials advance per NumPy call.

Delegates to the core layer's batch paths, one per recognizer:

* ``quantum`` — :func:`repro.core.quantum_recognizer.sample_acceptance_batch`:
  A1 is decided once, A2's fingerprints for every trial's evaluation
  point come out of one modular-Horner sweep, and A3's quantum register
  is promoted to a ``(J, 2^{2k+2})`` batch — one row per distinct
  iteration count — evolved through the operators' leading batch axis.
* ``classical-blockwise`` —
  :func:`repro.core.classical_recognizer.sample_blockwise_acceptance_batch`:
  the same A1/A2 vectorization plus the Proposition 3.7 chunk matcher
  collapsed to one bit-matrix diagonal AND-reduction.
* ``classical-full`` —
  :func:`repro.core.classical_recognizer.sample_full_storage_acceptance_batch`:
  the deterministic baseline decided once over packed uint64 lanes and
  broadcast across trials.

Trial randomness is drawn generator-for-generator like the sequential
backend, so the acceptance counts are identical, only faster.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from .api import ExecutionBackend, register_backend, validate_recognizer
from .telemetry import observe_backend_call


def _batch_sampler(recognizer: str) -> Callable[..., np.ndarray]:
    validate_recognizer(recognizer)
    if recognizer == "quantum":
        from ..core.quantum_recognizer import sample_acceptance_batch

        return sample_acceptance_batch
    if recognizer == "classical-blockwise":
        from ..core.classical_recognizer import sample_blockwise_acceptance_batch

        return sample_blockwise_acceptance_batch
    from ..core.classical_recognizer import sample_full_storage_acceptance_batch

    return sample_full_storage_acceptance_batch


@register_backend
class BatchedDenseBackend(ExecutionBackend):
    """Vectorized trials for the stock recognizers.

    *max_batch_bytes* / *chunk_trials* bound the dense working set: the
    samplers split the trial batch into contiguous tiles decided
    sequentially (see :mod:`repro.core.tiling`), with counts
    byte-identical to the untiled run — a fixed memory budget serves
    any depth.
    """

    name = "batched"

    def __init__(
        self,
        max_batch_bytes: Optional[int] = None,
        chunk_trials: Optional[int] = None,
        xp: Any = None,
    ) -> None:
        self.max_batch_bytes = max_batch_bytes
        self.chunk_trials = chunk_trials
        #: Array namespace the dense sweeps run in (see :mod:`repro.xp`);
        #: None means numpy.  The seeding contract is namespace-blind:
        #: trial randomness stays on the host, so counts match numpy's.
        self.xp = xp

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        if factory is not None:
            raise ValueError(
                "the batched backend vectorizes the stock recognizers "
                "themselves and cannot run a custom factory; use backend="
                "'sequential' for arbitrary algorithms"
            )
        sampler = _batch_sampler(recognizer)
        with observe_backend_call(
            self.name,
            recognizer,
            trials,
            max_batch_bytes=self.max_batch_bytes,
            chunk_trials=self.chunk_trials,
        ):
            return int(
                np.count_nonzero(
                    sampler(
                        word,
                        trials,
                        rng,
                        max_batch_bytes=self.max_batch_bytes,
                        chunk_trials=self.chunk_trials,
                        xp=self.xp,
                    )
                )
            )

    def count_accepted_from_seeds(
        self,
        word: str,
        seeds: Sequence[int],
        recognizer: str = "quantum",
    ) -> int:
        """Accepted count for explicit per-trial child seeds (sharding).

        An empty seed list — e.g. the continuation of an experiment
        already at its requested depth — is a 0-accepted no-op.
        """
        sampler = _batch_sampler(recognizer)
        with observe_backend_call(
            self.name,
            recognizer,
            len(seeds),
            max_batch_bytes=self.max_batch_bytes,
            chunk_trials=self.chunk_trials,
        ):
            return int(
                np.count_nonzero(
                    sampler(
                        word,
                        len(seeds),
                        None,
                        trial_seeds=seeds,
                        max_batch_bytes=self.max_batch_bytes,
                        chunk_trials=self.chunk_trials,
                        xp=self.xp,
                    )
                )
            )
