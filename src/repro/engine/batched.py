"""The dense batched backend: all trials advance per NumPy call.

Delegates to the core layer's batch path
(:func:`repro.core.quantum_recognizer.sample_acceptance_batch`): A1 is
decided once, A2's fingerprints for every trial's evaluation point come
out of one modular-Horner sweep, and A3's quantum register is promoted
to a ``(J, 2^{2k+2})`` batch — one row per distinct iteration count —
evolved through the operators' leading batch axis.  Trial randomness is
drawn generator-for-generator like the sequential backend, so the
acceptance counts are identical, only faster.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from .api import ExecutionBackend, register_backend


@register_backend
class BatchedDenseBackend(ExecutionBackend):
    """Vectorized trials for the Theorem 3.4 recognizer."""

    name = "batched"

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
    ) -> int:
        from ..core.quantum_recognizer import sample_acceptance_batch

        if factory is not None:
            raise ValueError(
                "the batched backend vectorizes the Theorem 3.4 recognizer "
                "itself and cannot run a custom factory; use backend="
                "'sequential' for arbitrary algorithms"
            )
        return int(np.count_nonzero(sample_acceptance_batch(word, trials, rng)))
