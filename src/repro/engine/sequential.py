"""The reference backend: one streaming pass per trial.

This is exactly the semantics the library has always had — spawn one
child generator per trial, build a fresh recognizer from it, stream the
word through symbol by symbol — packaged behind the engine API so the
vectorized backends have a ground truth to be measured (and tested)
against.  It is also the only backend that accepts an arbitrary
algorithm *factory*, since it never looks inside the algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..rng import spawn
from .api import ExecutionBackend, register_backend


def _default_factory(child: np.random.Generator):
    from ..core.quantum_recognizer import QuantumOnlineRecognizer

    return QuantumOnlineRecognizer(rng=child)


@register_backend
class SequentialBackend(ExecutionBackend):
    """Per-trial scalar simulation (the pre-engine semantics)."""

    name = "sequential"

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
    ) -> int:
        from ..streaming.runner import run_online

        build = factory if factory is not None else _default_factory
        accepted = 0
        for child in spawn(rng, trials):
            if run_online(build(child), word).accepted:
                accepted += 1
        return accepted
