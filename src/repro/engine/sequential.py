"""The reference backend: one streaming pass per trial.

This is exactly the semantics the library has always had — spawn one
child generator per trial, build a fresh recognizer from it, stream the
word through symbol by symbol — packaged behind the engine API so the
vectorized backends have a ground truth to be measured (and tested)
against.  All three stock recognizers (quantum, classical-blockwise,
classical-full) are built this way, and it is also the only backend
that accepts an arbitrary algorithm *factory*, since it never looks
inside the algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..rng import spawn
from .api import (
    DETERMINISTIC_RECOGNIZERS,
    ExecutionBackend,
    register_backend,
    validate_recognizer,
)
from .telemetry import observe_backend_call


def _quantum_factory(child: np.random.Generator):
    from ..core.quantum_recognizer import QuantumOnlineRecognizer

    return QuantumOnlineRecognizer(rng=child)


def _blockwise_factory(child: np.random.Generator):
    from ..core.classical_recognizer import BlockwiseClassicalRecognizer

    return BlockwiseClassicalRecognizer(rng=child)


def _full_storage_factory(child: np.random.Generator):
    from ..core.classical_recognizer import FullStorageClassicalRecognizer

    return FullStorageClassicalRecognizer()  # deterministic: child unused


#: recognizer name -> (child generator -> streamed machine)
RECOGNIZER_FACTORIES: Dict[str, Callable[[np.random.Generator], Any]] = {
    "quantum": _quantum_factory,
    "classical-blockwise": _blockwise_factory,
    "classical-full": _full_storage_factory,
}


def resolve_factory(
    factory: Optional[Callable[[np.random.Generator], Any]], recognizer: str
) -> Callable[[np.random.Generator], Any]:
    """The algorithm builder for a (factory, recognizer) pair.

    An explicit *factory* wins, but only alongside the default
    recognizer — naming a recognizer *and* supplying a factory is
    contradictory and rejected.
    """
    if factory is not None:
        if recognizer != "quantum":
            raise ValueError(
                "pass either recognizer= or factory=, not both; the factory "
                "already decides which algorithm runs"
            )
        return factory
    validate_recognizer(recognizer)
    return RECOGNIZER_FACTORIES[recognizer]


@register_backend
class SequentialBackend(ExecutionBackend):
    """Per-trial scalar simulation (the pre-engine semantics).

    Accepts the engine-wide *max_batch_bytes* knob for uniform option
    threading (every stock backend takes it), but never consults it:
    one streaming pass holds one trial's state, so the working set is
    already O(1) in the trial count.
    """

    name = "sequential"

    def __init__(self, max_batch_bytes: Optional[int] = None) -> None:
        self.max_batch_bytes = max_batch_bytes

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        label = "custom" if factory is not None else recognizer
        with observe_backend_call(self.name, label, trials):
            if factory is None and recognizer in DETERMINISTIC_RECOGNIZERS:
                # The machine never consults its child generator; skip the
                # spawn so the parent's state matches the batched backend,
                # which skips it for the same reason.
                children: Any = [None] * trials
            else:
                children = spawn(rng, trials)
            return self.count_accepted_from_children(
                word, children, factory, recognizer
            )

    def count_accepted_from_seeds(
        self,
        word: str,
        seeds: Sequence[int],
        recognizer: str = "quantum",
    ) -> int:
        """Accepted count for explicit per-trial child seeds.

        The trial-sharding entry: ``seeds`` is a contiguous slice of
        what :func:`repro.rng.spawn_seeds` produced for the whole word,
        so shards reproduce the unsharded draw order exactly.
        """
        with observe_backend_call(self.name, recognizer, len(seeds)):
            children: List[np.random.Generator] = [
                np.random.default_rng(s) for s in seeds
            ]
            return self.count_accepted_from_children(word, children, None, recognizer)

    @staticmethod
    def count_accepted_from_children(
        word: str,
        children: Sequence[Optional[np.random.Generator]],
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        from ..streaming.runner import run_online

        build = resolve_factory(factory, recognizer)
        accepted = 0
        for child in children:
            if run_online(build(child), word).accepted:
                accepted += 1
        return accepted
