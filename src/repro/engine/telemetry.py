"""Engine-layer instrumentation: one helper, every backend.

:func:`observe_backend_call` is the single pattern all five backends
wrap their counting entry points in — a static-named span (so traces
show which backend decided which trials), per-``(backend, recognizer)``
call/trial counters, and a latency histogram observed only on success
(a raised call records the attempt, not a bogus duration).  Keeping it
in one place keeps the metric catalog coherent: every backend emits
the *same* names with the *same* labels, so dashboards and the bench
harness can sweep ``backend=`` values without special cases.

:func:`count_degradation` records the silent-slow-path events — gpu
running on numpy, pool backends falling back inline — as monotonic
counters a fleet operator can alert on (surfaced by the service's
``stats``/``metrics`` ops).  The degradation paths themselves are
count-preserving by construction; the counter only makes them visible.

Telemetry never changes counts: nothing here consults randomness, and
the hypothesis tests in ``tests/obs`` pin instrumented runs
byte-identical to uninstrumented ones on every backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..obs import clock, get_registry, span


@contextmanager
def observe_backend_call(
    backend: str, recognizer: str, trials: int, **attrs: Any
) -> Iterator[None]:
    """Wrap one backend counting call in spans + counters + latency.

    *trials* is the number of engine trials the call will decide
    (``len(seeds)`` on the explicit-seeds path); extra ``**attrs`` ride
    on the span in full-trace mode (shard counts, byte budgets).
    """
    registry = get_registry()
    registry.counter(
        "engine.backend.calls", backend=backend, recognizer=recognizer
    ).inc()
    if trials > 0:
        registry.counter(
            "engine.backend.trials", backend=backend, recognizer=recognizer
        ).inc(trials)
    start = clock.perf_counter()
    with span(
        "engine.backend.count",
        backend=backend,
        recognizer=recognizer,
        trials=trials,
        **attrs,
    ):
        yield
    registry.histogram(
        "engine.backend.seconds", backend=backend, recognizer=recognizer
    ).observe(clock.perf_counter() - start)


def count_degradation(backend: str, to: str) -> None:
    """Record one degradation event: *backend* ran on its *to* fallback."""
    get_registry().counter("engine.degradations", backend=backend, to=to).inc()


def count_shards(backend: str, shards: int) -> None:
    """Record a fan-out's shard count (sum over calls; calls are counted
    separately, so the mean fan-out is recoverable)."""
    if shards > 0:
        get_registry().counter("engine.backend.shards", backend=backend).inc(shards)
