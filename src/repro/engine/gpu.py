"""The ``gpu`` backend: the dense batched path on a device namespace.

Same trials, same counts, different silicon: :class:`GpuBackend` is the
``batched`` backend with its array namespace resolved to an accelerator
(:mod:`repro.xp` — CuPy first, then torch-on-CUDA; ``REPRO_ARRAY_NS``
or the ``namespace=`` option pins a choice).  The per-trial seed plan,
the trial draws (A2's t, A3's j and measurement coin) and the accept
decisions stay on the host, so for a fixed seed the counts are
*identical* to every other backend — the device only accelerates the
``(J, 2^{2k+2})`` state evolution and the modular-Horner sweeps.

Tiling doubles as device-memory management: the same
``resolve_chunk_trials`` / ``tile_bounds`` machinery that bounds the
host working set bounds the device working set, with the budget
defaulting to a fraction of the *free device memory* the probe
reported.  One tile's state batch plus per-trial arrays live on the
device at a time; tiles stream through sequentially.

Degradation mirrors the ``sharedmem`` pattern — inline, never fatal:
when no array library with a visible device is importable, the backend
warns once (:class:`GpuDegradationWarning`, with the per-candidate
probe details) and runs the identical numpy path, keeping its ``gpu``
name so records show what was asked for.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional, Tuple

from ..xp import (
    CANDIDATES,
    NamespaceStatus,
    namespace_name,
    namespace_status,
    resolve_namespace,
)
from .api import register_backend
from .batched import BatchedDenseBackend
from .telemetry import count_degradation

#: Fraction of the probed free device memory offered to one tile's
#: working set when no explicit budget is given.  Conservative on
#: purpose: the operators' permutation/sign tables and the namespace's
#: own pools also live in device memory, outside the tile model.
DEVICE_MEMORY_FRACTION = 0.5


class GpuDegradationWarning(RuntimeWarning):
    """Emitted once when ``gpu`` runs on numpy because no device is usable."""


def _probe_summary() -> str:
    """Per-candidate availability lines, joined for messages."""
    statuses = namespace_status()
    return "; ".join(
        statuses[name].describe() for name in CANDIDATES if name != "numpy"
    )


@register_backend
class GpuBackend(BatchedDenseBackend):
    """Tile-partitioned state sweeps on an accelerator namespace.

    Args:
        namespace: which array namespace to use — a name from
            :data:`repro.xp.CANDIDATES` (``"cupy"``, ``"torch"``), or
            ``None`` to auto-resolve (environment variable, then the
            first candidate with a visible device, then numpy with a
            degradation warning).  A non-string is taken as an already
            -constructed namespace object and used as-is (tests inject
            CPU shims this way); it is trusted to be available.
        device_memory_bytes: free device memory the tile model may
            assume, overriding the probed value (useful on shared
            devices); ignored when *max_batch_bytes* is given.
        max_batch_bytes: explicit tile budget, as on ``batched``; wins
            over any device-memory derivation.
        chunk_trials: explicit tile size in trials, as on ``batched``.
    """

    name = "gpu"

    def __init__(
        self,
        namespace: Any = None,
        device_memory_bytes: Optional[int] = None,
        max_batch_bytes: Optional[int] = None,
        chunk_trials: Optional[int] = None,
    ) -> None:
        if namespace is not None and not isinstance(namespace, str):
            xp: Any = namespace
            status = NamespaceStatus(
                namespace_name(xp), True, "injected", "caller-supplied namespace"
            )
        else:
            xp, status = resolve_namespace(namespace)
            degraded = not status.available or status.name == "numpy"
            if degraded:
                count_degradation(self.name, "batched")
                warnings.warn(
                    "gpu backend: no accelerator namespace is usable "
                    f"({_probe_summary()}); running the identical numpy "
                    "path inline",
                    GpuDegradationWarning,
                    stacklevel=2,
                )
                xp = None  # the numpy path, spelled the batched way
        if max_batch_bytes is None:
            budget = (
                device_memory_bytes
                if device_memory_bytes is not None
                else status.memory_bytes
            )
            if budget is not None:
                max_batch_bytes = max(1, int(budget * DEVICE_MEMORY_FRACTION))
        super().__init__(
            max_batch_bytes=max_batch_bytes, chunk_trials=chunk_trials, xp=xp
        )
        #: The probe / resolution outcome this instance was built from.
        self.namespace_status = status

    @classmethod
    def availability(cls) -> Tuple[bool, str]:
        """Whether an accelerator device was found, with the probe detail."""
        statuses = namespace_status()
        for name in CANDIDATES:
            if name == "numpy":
                continue
            if statuses[name].available:
                return True, statuses[name].describe()
        return False, f"degrades to batched numpy ({_probe_summary()})"
