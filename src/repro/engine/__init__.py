"""Batched execution engine for acceptance-probability experiments.

See :mod:`repro.engine.api` for the contract.  Importing this package
registers the three stock backends:

* ``sequential`` — per-trial streaming passes (reference semantics);
* ``batched``    — ``(B, 2^n)`` state batches + one Horner sweep;
* ``multiprocess`` — word-level fan-out over a process pool.

The seeding contract makes backends interchangeable: same seed, same
acceptance counts — switching backend is purely a throughput decision.
"""

from .api import (
    AcceptanceEstimate,
    ExecutionBackend,
    ExecutionEngine,
    available_backends,
    get_backend,
    register_backend,
)
from .sequential import SequentialBackend
from .batched import BatchedDenseBackend
from .multiprocess import MultiprocessBackend

__all__ = [
    "AcceptanceEstimate",
    "ExecutionBackend",
    "ExecutionEngine",
    "available_backends",
    "get_backend",
    "register_backend",
    "SequentialBackend",
    "BatchedDenseBackend",
    "MultiprocessBackend",
]
