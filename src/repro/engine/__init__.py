"""Batched execution engine for acceptance-probability experiments.

See :mod:`repro.engine.api` for the contract.  Importing this package
registers the three stock backends:

* ``sequential`` — per-trial streaming passes (reference semantics);
* ``batched``    — ``(B, 2^n)`` state batches + one Horner sweep,
  optionally tiled under a ``max_batch_bytes`` memory budget;
* ``multiprocess`` — word-level fan-out over a process pool;
* ``sharedmem``  — trial-level fan-out with the word material and the
  per-trial seed plan placed in ``multiprocessing.shared_memory`` once
  instead of pickled per task;
* ``gpu``        — the batched path with its array namespace resolved
  to an accelerator (CuPy / torch-on-CUDA, see :mod:`repro.xp`), tiles
  bounded by free device memory; degrades inline to the identical
  numpy path (one warning) when no device is visible.

Orthogonal to the backend axis, every backend samples any of the stock
recognizers (``recognizer="quantum" | "classical-blockwise" |
"classical-full"`` — see :data:`repro.engine.api.RECOGNIZERS`): the
backend is the *how*, the recognizer the *what*.

The seeding contract makes backends interchangeable: same seed, same
acceptance counts — switching backend is purely a throughput decision.
"""

from .api import (
    AcceptanceEstimate,
    ExecutionBackend,
    ExecutionEngine,
    RECOGNIZERS,
    available_backends,
    backend_availability,
    describe_backends,
    get_backend,
    register_backend,
    trial_seed_plan,
    validate_recognizer,
)
from .sequential import SequentialBackend
from .batched import BatchedDenseBackend
from .multiprocess import MultiprocessBackend
from .sharedmem import SharedMemoryBackend
from .gpu import GpuBackend, GpuDegradationWarning

__all__ = [
    "AcceptanceEstimate",
    "ExecutionBackend",
    "ExecutionEngine",
    "RECOGNIZERS",
    "available_backends",
    "backend_availability",
    "describe_backends",
    "get_backend",
    "register_backend",
    "trial_seed_plan",
    "validate_recognizer",
    "SequentialBackend",
    "BatchedDenseBackend",
    "MultiprocessBackend",
    "SharedMemoryBackend",
    "GpuBackend",
    "GpuDegradationWarning",
]
