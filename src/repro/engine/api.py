"""The batched execution engine: one API, pluggable trial backends.

The experiments' hot path is always the same shape — estimate the
recognizer's acceptance probability on each word of a list by running
many independent randomized trials.  The engine owns that loop and lets
the *how* vary per backend:

* ``sequential`` — one streaming pass per trial, exactly today's
  per-trial semantics (:mod:`repro.engine.sequential`);
* ``batched`` — all trials of a word advance together as ``(B, 2^n)``
  state batches and one modular-Horner sweep
  (:mod:`repro.engine.batched`);
* ``multiprocess`` — the word list fans out over a process pool, each
  worker running one of the in-process backends
  (:mod:`repro.engine.multiprocess`);
* ``sharedmem`` — one word's trials fan out over a process pool with
  the word material and per-trial seed plan placed in shared memory
  once instead of pickled per task (:mod:`repro.engine.sharedmem`).

Seeding is part of the API contract: ``run_many`` derives one child
seed per word with :func:`repro.rng.spawn_seeds`, in word order, and
every backend replicates the per-trial draw order of the sequential
path — so for a fixed seed all backends return *identical* acceptance
counts, and the batched/multiprocess backends are pure speedups.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..analysis.bounds import binomial_stderr, wilson_interval
from ..obs import get_registry, span
from ..rng import RngLike, ensure_rng, spawn_seeds

#: Recognizer names every backend understands (the *what* to sample;
#: the backend is the *how*).  "quantum" is Theorem 3.4's machine,
#: "classical-blockwise" Proposition 3.7's, "classical-full" the
#: full-storage baseline.
RECOGNIZERS = ("quantum", "classical-blockwise", "classical-full")

#: Recognizers whose machines consult no randomness at all.  No backend
#: spawns per-trial children for these, so a parent generator shared
#: across successive calls is left in the same spawn state whatever the
#: backend — the seeding contract holds call-for-call, not just
#: call-by-call.
DETERMINISTIC_RECOGNIZERS = frozenset({"classical-full"})


def trial_seed_plan(rng: RngLike, trials: int) -> List[int]:
    """The per-trial child seeds an unsharded single-word run would draw.

    For a parent seed *rng*, every backend derives trial *i*'s child
    generator from ``spawn_seeds(parent, trials)[i]`` — this function is
    that list, exposed as a public API.  Two contracts hang off it:

    * **sharding** — any contiguous slice ``plan[lo:hi]`` fed to a
      backend's ``count_accepted_from_seeds`` runs exactly trials
      ``lo..hi`` of the unsharded run (the multiprocess backend's
      ``shard_trials`` path is built on this);
    * **resumption** — because ``SeedSequence`` children depend only on
      the parent entropy and the child index, ``trial_seed_plan(seed,
      more)[done:]`` is the exact continuation of a run that stopped
      after ``done`` trials: counts merged across the boundary are
      identical to one fresh ``more``-trial run.  ``repro.lab`` deepens
      cached experiments through this.

    Deterministic recognizers (:data:`DETERMINISTIC_RECOGNIZERS`) never
    consult their child generators, so for them the plan is a valid —
    if unused — slicing vocabulary: feeding any slice of it still
    produces the right counts.

    Args:
        rng: anything :func:`repro.rng.ensure_rng` accepts — an int
            seed, a ``Generator``, a ``SeedSequence``, or ``None`` for
            the library default.  Generators must be SeedSequence-based
            (``numpy.random.default_rng``) or ``TypeError`` is raised;
            a generator that has already spawned children yields a
            *different* plan than its seed would (the spawn counter has
            advanced), so pass the seed itself when you need the
            resumption contract.
        trials: plan length; ``0`` is legal (an empty plan),
            negative raises ``ValueError``.

    Plans are prefix-stable — a shorter plan from the same seed is a
    prefix of a longer one, which is exactly the resumption contract:

    >>> trial_seed_plan(7, 4) == trial_seed_plan(7, 9)[:4]
    True
    >>> trial_seed_plan(7, 0)
    []
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    return spawn_seeds(ensure_rng(rng), trials)


def validate_recognizer(recognizer: str) -> str:
    """Reject unknown recognizer names with a helpful message."""
    if recognizer not in RECOGNIZERS:
        raise ValueError(
            f"unknown recognizer {recognizer!r}; available: {', '.join(RECOGNIZERS)}"
        )
    return recognizer


@dataclass(frozen=True)
class AcceptanceEstimate:
    """Result of sampling one word's acceptance probability.

    ``elapsed_s`` is wall-clock time attributed to this word: the
    measured time for a single :meth:`ExecutionEngine.estimate_acceptance`
    call, or the batch total amortized evenly across words for
    :meth:`ExecutionEngine.run_many` (so summing ``elapsed_s`` over a
    sweep recovers its wall-clock, including under the multiprocess
    backend, where per-word time is not individually observable).
    """

    word_length: int
    trials: int
    accepted: int
    backend: str
    elapsed_s: float = 0.0
    recognizer: str = "quantum"

    @property
    def probability(self) -> float:
        """Empirical acceptance frequency."""
        return self.accepted / self.trials

    @property
    def stderr(self) -> float:
        """Standard error of :attr:`probability` (plug-in binomial)."""
        return binomial_stderr(self.accepted, self.trials)

    @property
    def wilson95(self) -> Tuple[float, float]:
        """Wilson 95% score interval for the acceptance probability.

        Stays informative at the boundary frequencies (0 or all trials
        accepted), where :attr:`stderr` degenerates to zero.
        """
        return wilson_interval(self.accepted, self.trials)

    @property
    def trials_per_second(self) -> float:
        """Throughput; 0.0 when the timing is below clock resolution.

        (Never ``inf``: benchmark records serialize estimates to JSON,
        where ``Infinity`` is not a legal literal.)
        """
        return self.trials / self.elapsed_s if self.elapsed_s > 0 else 0.0


class ExecutionBackend(ABC):
    """One strategy for running the trials of an acceptance experiment.

    Subclasses implement :meth:`count_accepted` (one word, many trials)
    and may override :meth:`count_accepted_many` when they can do better
    than a word loop (the multiprocess backend fans it out).
    """

    #: Registry key; subclasses set it and register via register_backend.
    name: str = "abstract"

    @classmethod
    def availability(cls) -> Tuple[bool, str]:
        """``(usable_at_full_speed, detail)`` for this backend, probed cheaply.

        Every registered backend *runs* everywhere (the process-pool and
        device backends degrade inline), so the flag answers "would it
        run in its native mode here?" — the ``gpu`` backend overrides
        this with which array library / device the probe found.  The
        detail string is surfaced by ``repro info`` and by
        :func:`get_backend`'s unknown-name error.
        """
        return True, "always available"

    @abstractmethod
    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        """Number of accepting trials among *trials* runs on *word*.

        *recognizer* picks the machine to sample (see
        :data:`RECOGNIZERS`); *factory* (child generator -> algorithm)
        overrides it with an arbitrary algorithm — backends that
        vectorize the recognizers themselves reject custom factories.
        """

    def count_accepted_many(
        self,
        words: Sequence[str],
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> List[int]:
        """Accepted counts per word; one spawned child seed per word."""
        seeds = spawn_seeds(rng, len(words))
        return [
            self.count_accepted(
                word, trials, np.random.default_rng(seed), factory, recognizer
            )
            for word, seed in zip(words, seeds)
        ]


_BACKENDS: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Class decorator adding a backend to the ``get_backend`` registry."""
    if cls.name in _BACKENDS:
        raise ValueError(f"backend {cls.name!r} registered twice")
    _BACKENDS[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Registered backend names, stable order."""
    return sorted(_BACKENDS)


def backend_availability() -> Dict[str, Tuple[bool, str]]:
    """``{name: (usable_at_full_speed, detail)}`` for every backend."""
    return {name: _BACKENDS[name].availability() for name in available_backends()}


def describe_backends() -> List[str]:
    """One ``"name: detail"`` line per registered backend.

    The shared vocabulary of ``repro info``, the CLI's ``--backend``
    validation error, and :func:`get_backend`'s unknown-name error —
    all three list the same names with the same availability detail.
    """
    return [
        f"{name}: {detail}" for name, (_ok, detail) in backend_availability().items()
    ]


BackendSpec = Union[str, ExecutionBackend]


def get_backend(spec: BackendSpec = "batched", **options: Any) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(spec, ExecutionBackend):
        if options:
            raise ValueError("options only apply when resolving by name")
        return spec
    try:
        cls = _BACKENDS[spec]
    except KeyError:
        listing = "; ".join(describe_backends())
        raise ValueError(
            f"unknown backend {spec!r}; registered backends: {listing}"
        ) from None
    return cls(**options)


class ExecutionEngine:
    """Front door: estimate acceptance probabilities through a backend.

    Args:
        backend: a registry name (``"sequential"``, ``"batched"``,
            ``"multiprocess"``, ``"sharedmem"``) or a configured
            :class:`ExecutionBackend` instance.  ``**options`` go to
            the named backend's constructor (e.g.
            ``max_batch_bytes=``, ``shard_trials=``) and are rejected
            alongside an instance.

    Seeding semantics: the ``rng`` passed to each call is the *parent*
    of the per-trial (and, for :meth:`run_many`, per-word) child
    streams, derived via ``SeedSequence`` spawning — so a fixed seed
    gives identical acceptance counts on every backend, and switching
    backend is purely a throughput decision.

    Failure modes: unknown backend or recognizer names raise
    ``ValueError`` at construction / call time; the process-pool
    backends degrade *inline* (same counts, no parallelism) when pools
    are unavailable rather than raising.

    >>> from repro.core import member
    >>> import numpy as np
    >>> word = member(1, np.random.default_rng(0))
    >>> est = ExecutionEngine("batched").estimate_acceptance(word, trials=200, rng=7)
    >>> est.accepted, est.probability   # members are accepted w.p. 1
    (200, 1.0)
    >>> seq = ExecutionEngine("sequential").estimate_acceptance(word, trials=200, rng=7)
    >>> est.accepted == seq.accepted    # the seeding contract
    True
    """

    def __init__(self, backend: BackendSpec = "batched", **options: Any) -> None:
        self.backend = get_backend(backend, **options)

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def _observe_run(self, recognizer: str, total_trials: int, elapsed: float) -> None:
        """Fold one engine run into the registry (cost calibration data).

        ``engine.run.seconds`` is the per-call latency distribution;
        ``engine.trial.seconds`` the per-trial amortized cost — the
        measured cost-per-trial the bench harness exports per
        ``(recognizer, backend)`` for the ROADMAP's sweep planner.
        """
        registry = get_registry()
        registry.counter(
            "engine.run.calls", backend=self.backend.name, recognizer=recognizer
        ).inc()
        registry.histogram(
            "engine.run.seconds", backend=self.backend.name, recognizer=recognizer
        ).observe(elapsed)
        if total_trials > 0:
            registry.counter(
                "engine.run.trials", backend=self.backend.name, recognizer=recognizer
            ).inc(total_trials)
            registry.histogram(
                "engine.trial.seconds",
                backend=self.backend.name,
                recognizer=recognizer,
            ).observe(elapsed / total_trials)

    def estimate_acceptance(
        self,
        word: str,
        trials: int,
        rng=None,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> AcceptanceEstimate:
        """Sample *trials* independent runs on one word."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        validate_recognizer(recognizer)
        gen = ensure_rng(rng)
        label = "custom" if factory is not None else recognizer
        start = time.perf_counter()
        with span(
            "engine.run",
            backend=self.backend.name,
            recognizer=label,
            trials=trials,
            words=1,
        ):
            accepted = self.backend.count_accepted(
                word, trials, gen, factory, recognizer
            )
        elapsed = time.perf_counter() - start
        self._observe_run(label, trials, elapsed)
        return AcceptanceEstimate(
            word_length=len(word),
            trials=trials,
            accepted=accepted,
            backend=self.backend.name,
            elapsed_s=elapsed,
            # A custom factory replaces the stock machine, so the
            # estimate must not claim a named recognizer ran.
            recognizer=label,
        )

    def run_many(
        self,
        words: Sequence[str],
        trials: int,
        rng=None,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> List[AcceptanceEstimate]:
        """Sample every word of a list; per-word seeds spawn in order."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        validate_recognizer(recognizer)
        gen = ensure_rng(rng)
        label = "custom" if factory is not None else recognizer
        start = time.perf_counter()
        with span(
            "engine.run",
            backend=self.backend.name,
            recognizer=label,
            trials=trials,
            words=len(words),
        ):
            counts = self.backend.count_accepted_many(
                words, trials, gen, factory, recognizer
            )
        elapsed = time.perf_counter() - start
        self._observe_run(label, trials * len(words), elapsed)
        per_word = elapsed / len(words) if words else 0.0
        return [
            AcceptanceEstimate(
                word_length=len(word),
                trials=trials,
                accepted=count,
                backend=self.backend.name,
                elapsed_s=per_word,
                recognizer=label,
            )
            for word, count in zip(words, counts)
        ]
