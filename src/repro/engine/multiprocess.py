"""The multiprocess backend: fan a word list out over a process pool.

Each worker runs one of the in-process backends (batched by default) on
its word.  Workers receive integer seeds — the exact seeds
:func:`repro.rng.spawn_seeds` hands the in-process backends — so the
counts are identical to a serial ``run_many`` with the same parent
seed, whatever the pool's scheduling order.

``processes <= 1`` degrades gracefully to inline execution (useful in
sandboxes where forking is restricted, and as the single-word
``count_accepted`` path, which has nothing to fan out).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..rng import spawn_seeds
from .api import ExecutionBackend, get_backend, register_backend


def _count_one(args: tuple) -> int:
    """Pool worker: rebuild the inner backend and run one word."""
    word, trials, seed, inner_name = args
    backend = get_backend(inner_name)
    return backend.count_accepted(word, trials, np.random.default_rng(seed))


@register_backend
class MultiprocessBackend(ExecutionBackend):
    """Word-level parallelism over ``concurrent.futures`` workers."""

    name = "multiprocess"

    def __init__(self, inner: str = "batched", processes: Optional[int] = None) -> None:
        if inner == self.name:
            raise ValueError("multiprocess cannot nest itself")
        self.inner = inner
        self.processes = processes
        self._inner_backend = get_backend(inner)

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
    ) -> int:
        # One word has nothing to fan out; run the inner backend inline.
        if factory is not None:
            raise ValueError("the multiprocess backend ships seeds, not closures")
        return self._inner_backend.count_accepted(word, trials, rng)

    def count_accepted_many(
        self,
        words: Sequence[str],
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
    ) -> List[int]:
        if factory is not None:
            raise ValueError("the multiprocess backend ships seeds, not closures")
        seeds = spawn_seeds(rng, len(words))
        jobs = [
            (word, trials, seed, self.inner) for word, seed in zip(words, seeds)
        ]
        workers = self.processes
        if workers is None:
            import os

            workers = min(len(jobs), os.cpu_count() or 1)
        if workers <= 1 or len(jobs) <= 1:
            return [_count_one(job) for job in jobs]
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_count_one, jobs))
        except (OSError, PermissionError):
            # Restricted environments (no fork/semaphores): run inline —
            # same counts, no parallelism.
            return [_count_one(job) for job in jobs]
