"""The multiprocess backend: fan work out over a process pool.

Two fan-out axes:

* **word-level** (the default ``count_accepted_many`` path) — each
  worker runs one of the in-process backends (batched by default) on
  its word.  Workers receive integer seeds — the exact seeds
  :func:`repro.rng.spawn_seeds` hands the in-process backends — so the
  counts are identical to a serial ``run_many`` with the same parent
  seed, whatever the pool's scheduling order.
* **trial-level** (``shard_trials=True``) — one word's trials are split
  into contiguous shards, each shipped to a worker as an explicit list
  of per-trial child seeds (a slice of the word's unsharded
  ``spawn_seeds`` output), so the per-trial draw order — and therefore
  the acceptance count — is identical to the unsharded run.  This is
  the single-word deep-sampling path.

``processes <= 1`` degrades gracefully to inline execution, as does any
pool-level failure — restricted sandboxes (``OSError`` /
``PermissionError`` at fork time) and workers reaped mid-flight
(``BrokenProcessPool``, e.g. OOM kills): same counts, no parallelism.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..rng import spawn_seeds
from .api import (
    DETERMINISTIC_RECOGNIZERS,
    ExecutionBackend,
    get_backend,
    register_backend,
)
from .telemetry import count_degradation, count_shards, observe_backend_call


def _inner_backend(spec, max_batch_bytes):
    """Resolve an inner backend, applying the budget only when set.

    A ``None`` budget must not reach ``get_backend``: an inner given as
    a configured *instance* takes no options at all, and a
    custom-registered class need not accept the kwarg just to be
    nested without a budget.
    """
    if max_batch_bytes is None:
        return get_backend(spec)
    return get_backend(spec, max_batch_bytes=max_batch_bytes)


def _count_one(args: tuple) -> int:
    """Pool worker: rebuild the inner backend and run one word."""
    word, trials, seed, inner_name, recognizer, max_batch_bytes = args
    backend = _inner_backend(inner_name, max_batch_bytes)
    return backend.count_accepted(
        word, trials, np.random.default_rng(seed), recognizer=recognizer
    )


def _count_shard(args: tuple) -> int:
    """Pool worker: run one shard of a word's trials from explicit seeds."""
    word, seeds, inner_name, recognizer, max_batch_bytes = args
    backend = _inner_backend(inner_name, max_batch_bytes)
    return backend.count_accepted_from_seeds(word, seeds, recognizer)


def _workers_for(processes, jobs: int) -> int:
    """Worker count for *jobs* tasks: explicit setting or cpu-bounded."""
    if processes is None:
        import os

        return min(jobs, os.cpu_count() or 1)
    return processes


def _shard_bounds(total: int, workers: int) -> List[tuple]:
    """Contiguous, non-empty ``(lo, hi)`` shard bounds covering *total*."""
    bounds = np.linspace(0, total, workers + 1, dtype=int)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _pool_errors() -> tuple:
    from concurrent.futures.process import BrokenProcessPool

    # Restricted environments (no fork/semaphores) surface as OSError /
    # PermissionError at pool creation; a worker killed mid-flight (OOM,
    # sandbox reaping) surfaces as BrokenProcessPool from the result
    # iterator.  All degrade to inline execution with identical counts.
    return (OSError, PermissionError, BrokenProcessPool)


@register_backend
class MultiprocessBackend(ExecutionBackend):
    """Word- or trial-level parallelism over ``concurrent.futures`` workers."""

    name = "multiprocess"

    def __init__(
        self,
        inner: str = "batched",
        processes: Optional[int] = None,
        shard_trials: bool = False,
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        if inner in (self.name, "sharedmem"):
            # Nesting pool backends would spawn a pool inside every
            # pool worker (up to N^2 processes).
            raise ValueError(f"multiprocess cannot nest the {inner!r} backend")
        self.inner = inner
        self.processes = processes
        self.shard_trials = shard_trials
        self.max_batch_bytes = max_batch_bytes
        self._inner_backend = _inner_backend(inner, max_batch_bytes)
        if shard_trials and not hasattr(self._inner_backend, "count_accepted_from_seeds"):
            raise ValueError(
                f"inner backend {inner!r} cannot run from explicit trial "
                "seeds, so its trials cannot be sharded"
            )

    def _workers(self, jobs: int) -> int:
        return _workers_for(self.processes, jobs)

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        if factory is not None:
            raise ValueError("the multiprocess backend ships seeds, not closures")
        with observe_backend_call(self.name, recognizer, trials):
            if not self.shard_trials or recognizer in DETERMINISTIC_RECOGNIZERS:
                # One word has nothing to fan out (and a deterministic
                # recognizer is decided once, so sharding its trials would
                # only spawn seeds nobody consults); run the inner backend
                # inline.
                return self._inner_backend.count_accepted(
                    word, trials, rng, recognizer=recognizer
                )
            # Trial-level sharding: the word's per-trial seeds are spawned
            # exactly as the unsharded inner backend would, then split into
            # contiguous shards — one worker each, summed counts.
            seeds = spawn_seeds(rng, trials)
            workers = min(self._workers(trials), trials)
            if workers <= 1:
                return self._inner_backend.count_accepted_from_seeds(
                    word, seeds, recognizer
                )
            shards = [
                (word, seeds[lo:hi], self.inner, recognizer, self.max_batch_bytes)
                for lo, hi in _shard_bounds(trials, workers)
            ]
            count_shards(self.name, len(shards))
            from concurrent.futures import ProcessPoolExecutor

            try:
                with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                    return sum(pool.map(_count_shard, shards))
            except _pool_errors():
                count_degradation(self.name, "inline")
                return sum(_count_shard(shard) for shard in shards)

    def count_accepted_from_seeds(
        self,
        word: str,
        seeds: Sequence[int],
        recognizer: str = "quantum",
    ) -> int:
        """Accepted count for explicit per-trial child seeds.

        The seed list (typically a slice of
        :func:`repro.engine.api.trial_seed_plan` — e.g. the continuation
        of a partially-run experiment being deepened by ``repro.lab``)
        is split into contiguous shards and fanned out exactly like the
        ``shard_trials`` path, so the counts match the inner backend
        run inline on the same seeds.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            # A zero-length shard (e.g. the empty continuation of an
            # already-complete run) is a no-op on every backend.
            return 0
        with observe_backend_call(self.name, recognizer, len(seeds)):
            workers = min(self._workers(len(seeds)), len(seeds))
            if recognizer in DETERMINISTIC_RECOGNIZERS:
                # The machine consults no randomness: one inline decision
                # beats shipping unused seed lists to a pool.
                workers = 1
            if workers <= 1:
                return self._inner_backend.count_accepted_from_seeds(
                    word, seeds, recognizer
                )
            shards = [
                (word, seeds[lo:hi], self.inner, recognizer, self.max_batch_bytes)
                for lo, hi in _shard_bounds(len(seeds), workers)
            ]
            count_shards(self.name, len(shards))
            from concurrent.futures import ProcessPoolExecutor

            try:
                with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                    return sum(pool.map(_count_shard, shards))
            except _pool_errors():
                count_degradation(self.name, "inline")
                return sum(_count_shard(shard) for shard in shards)

    def count_accepted_many(
        self,
        words: Sequence[str],
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> List[int]:
        if factory is not None:
            raise ValueError("the multiprocess backend ships seeds, not closures")
        seeds = spawn_seeds(rng, len(words))
        if self.shard_trials and len(words) == 1:
            # A single word fans out better across its trials.
            return [
                self.count_accepted(
                    words[0],
                    trials,
                    np.random.default_rng(seeds[0]),
                    recognizer=recognizer,
                )
            ]
        with observe_backend_call(
            self.name, recognizer, trials * len(words), words=len(words)
        ):
            jobs = [
                (word, trials, seed, self.inner, recognizer, self.max_batch_bytes)
                for word, seed in zip(words, seeds)
            ]
            workers = self._workers(len(jobs))
            if workers <= 1 or len(jobs) <= 1:
                return [_count_one(job) for job in jobs]
            count_shards(self.name, len(jobs))
            from concurrent.futures import ProcessPoolExecutor

            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(_count_one, jobs))
            except _pool_errors():
                count_degradation(self.name, "inline")
                return [_count_one(job) for job in jobs]
