"""The shared-memory backend: trial fan-out without per-task pickling.

``multiprocess(shard_trials=True)`` ships every shard its slice of the
per-trial seed list (16 bytes a seed) and the word string *per task*,
through the pool's pickle pipe.  At the depths where the separation
becomes visible — millions of trials on one word — that serialization
is pure overhead: the word and the seed plan are identical for every
shard.  This backend places them in ``multiprocessing.shared_memory``
**once**:

* the word's ASCII bytes in one segment;
* the packed per-trial seed plan (one 16-byte little-endian row per
  trial) in a second;
* an ``int64`` per-shard counts buffer in a third.

Workers receive only ``(shm_name, lo, hi)`` index triples (plus the
inner backend name and recognizer), attach, decide trials ``lo..hi``
with the inner backend, and write their accepted count into their slot
of the counts buffer; the parent sums the buffer.  Because the seeds
are the exact ``spawn_seeds`` output of the unsharded run and shards
are contiguous slices of it, the counts are seed-identical to the
``batched`` backend — the engine's seeding contract holds.

Degradation mirrors the multiprocess backend: ``processes <= 1``, a
deterministic recognizer, an environment without shared memory
(``OSError`` / ``PermissionError`` at segment creation), or a pool that
cannot start / loses workers mid-flight (``BrokenProcessPool``) all
fall back to inline execution with identical counts.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..rng import spawn_seeds
from .api import (
    DETERMINISTIC_RECOGNIZERS,
    ExecutionBackend,
    register_backend,
)
from .multiprocess import _inner_backend, _pool_errors, _shard_bounds, _workers_for
from .telemetry import count_degradation, count_shards, observe_backend_call

#: Bytes per packed seed row; ``spawn_seeds`` children are 128-bit ints.
SEED_BYTES = 16


def _pack_seed_plan(seeds: Sequence[int]) -> bytes:
    """Seed list -> contiguous little-endian 16-byte rows."""
    return b"".join(int(s).to_bytes(SEED_BYTES, "little") for s in seeds)


def _unpack_seed_rows(buf, lo: int, hi: int) -> List[int]:
    """Rows ``lo..hi`` of a packed seed-plan buffer, back as ints."""
    raw = bytes(buf[lo * SEED_BYTES : hi * SEED_BYTES])
    return [
        int.from_bytes(raw[i : i + SEED_BYTES], "little")
        for i in range(0, len(raw), SEED_BYTES)
    ]


def _destroy(segment) -> None:
    """Close and unlink one segment, tolerating repeated teardown."""
    for step in (segment.close, segment.unlink):
        try:
            step()
        except (FileNotFoundError, OSError):
            pass


def _count_shard_shared(args: tuple) -> int:
    """Pool worker: decide trials ``lo..hi`` straight from shared memory."""
    (
        word_name,
        word_len,
        seeds_name,
        counts_name,
        n_shards,
        shard_index,
        lo,
        hi,
        inner_name,
        recognizer,
        max_batch_bytes,
    ) = args
    from multiprocessing import shared_memory

    word_shm = shared_memory.SharedMemory(name=word_name)
    try:
        word = bytes(word_shm.buf[:word_len]).decode("ascii")
    finally:
        word_shm.close()
    seeds_shm = shared_memory.SharedMemory(name=seeds_name)
    try:
        seeds = _unpack_seed_rows(seeds_shm.buf, lo, hi)
    finally:
        seeds_shm.close()
    backend = _inner_backend(inner_name, max_batch_bytes)
    count = backend.count_accepted_from_seeds(word, seeds, recognizer)
    counts_shm = shared_memory.SharedMemory(name=counts_name)
    try:
        counts = np.ndarray((n_shards,), dtype=np.int64, buffer=counts_shm.buf)
        counts[shard_index] = count
        del counts  # release the buffer export before close()
    finally:
        counts_shm.close()
    return count


@register_backend
class SharedMemoryBackend(ExecutionBackend):
    """Trial-level fan-out with the word and seed plan shared, not shipped."""

    name = "sharedmem"

    def __init__(
        self,
        inner: str = "batched",
        processes: Optional[int] = None,
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        if inner in (self.name, "multiprocess"):
            raise ValueError(f"sharedmem cannot nest the {inner!r} backend")
        self.inner = inner
        self.processes = processes
        self.max_batch_bytes = max_batch_bytes
        self._inner_backend = _inner_backend(inner, max_batch_bytes)
        if not hasattr(self._inner_backend, "count_accepted_from_seeds"):
            raise ValueError(
                f"inner backend {inner!r} cannot run from explicit trial "
                "seeds, so its trials cannot be sharded"
            )

    def _workers(self, jobs: int) -> int:
        return _workers_for(self.processes, jobs)

    def count_accepted(
        self,
        word: str,
        trials: int,
        rng: np.random.Generator,
        factory: Optional[Callable[[np.random.Generator], Any]] = None,
        recognizer: str = "quantum",
    ) -> int:
        if factory is not None:
            raise ValueError("the sharedmem backend ships seeds, not closures")
        with observe_backend_call(self.name, recognizer, trials):
            if recognizer in DETERMINISTIC_RECOGNIZERS:
                # The machine consults no randomness; run the inner backend
                # inline so the parent's spawn counter stays untouched,
                # like every other backend.
                return self._inner_backend.count_accepted(
                    word, trials, rng, recognizer=recognizer
                )
            # The exact per-trial seeds the unsharded run would draw.
            return self._count_from_seeds(
                word, spawn_seeds(rng, trials), recognizer
            )

    def count_accepted_from_seeds(
        self,
        word: str,
        seeds: Sequence[int],
        recognizer: str = "quantum",
    ) -> int:
        """Accepted count for explicit per-trial child seeds.

        The seed list (typically a slice of
        :func:`repro.engine.api.trial_seed_plan`, e.g. a ``repro.lab``
        deepening continuation) is split into contiguous shards fanned
        out through shared memory.  An empty list is a 0-accepted
        no-op; counts always match the inner backend run inline on the
        same seeds.
        """
        with observe_backend_call(self.name, recognizer, len(seeds)):
            return self._count_from_seeds(word, seeds, recognizer)

    def _count_from_seeds(
        self,
        word: str,
        seeds: Sequence[int],
        recognizer: str,
    ) -> int:
        """The un-instrumented core both counting entry points share."""
        seeds = [int(s) for s in seeds]
        if not seeds:
            return 0
        workers = min(self._workers(len(seeds)), len(seeds))
        if workers <= 1 or recognizer in DETERMINISTIC_RECOGNIZERS:
            return self._inner_backend.count_accepted_from_seeds(
                word, seeds, recognizer
            )
        return self._fan_out(
            word, seeds, _shard_bounds(len(seeds), workers), recognizer
        )

    def _fan_out(
        self,
        word: str,
        seeds: List[int],
        shard_bounds: List[Tuple[int, int]],
        recognizer: str,
    ) -> int:
        from multiprocessing import shared_memory

        count_shards(self.name, len(shard_bounds))

        def inline() -> int:
            # Same shards, local seeds: counts are shard-sum invariant,
            # so degradation never changes the statistics.
            count_degradation(self.name, "inline")
            return sum(
                self._inner_backend.count_accepted_from_seeds(
                    word, seeds[lo:hi], recognizer
                )
                for lo, hi in shard_bounds
            )

        word_bytes = word.encode("ascii")
        segments: List[Any] = []
        try:
            word_shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(word_bytes))
            )
            segments.append(word_shm)
            word_shm.buf[: len(word_bytes)] = word_bytes
            # Writes are length-bounded: platforms may page-round the
            # segment, making len(buf) larger than the requested size.
            packed = _pack_seed_plan(seeds)
            seeds_shm = shared_memory.SharedMemory(create=True, size=len(packed))
            segments.append(seeds_shm)
            seeds_shm.buf[: len(packed)] = packed
            counts_shm = shared_memory.SharedMemory(
                create=True, size=len(shard_bounds) * 8
            )
            segments.append(counts_shm)
            counts_shm.buf[: len(shard_bounds) * 8] = bytes(len(shard_bounds) * 8)
        except (OSError, PermissionError):
            # No (or no room in) /dev/shm: degrade like a broken pool.
            for segment in segments:
                _destroy(segment)
            return inline()
        try:
            # Everything past creation stays under this try: an error in
            # task packing or the pool import must still unlink segments.
            tasks = [
                (
                    word_shm.name,
                    len(word_bytes),
                    seeds_shm.name,
                    counts_shm.name,
                    len(shard_bounds),
                    index,
                    lo,
                    hi,
                    self.inner,
                    recognizer,
                    self.max_batch_bytes,
                )
                for index, (lo, hi) in enumerate(shard_bounds)
            ]
            from concurrent.futures import ProcessPoolExecutor

            try:
                with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                    list(pool.map(_count_shard_shared, tasks))
                counts = np.ndarray(
                    (len(shard_bounds),), dtype=np.int64, buffer=counts_shm.buf
                )
                total = int(counts.sum())
                del counts  # release the buffer export before unlink
                return total
            except _pool_errors():
                return inline()
        finally:
            for segment in segments:
                _destroy(segment)
