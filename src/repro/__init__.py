"""repro — reproduction of Le Gall (SPAA 2006), *Exponential Separation
of Quantum and Classical Online Space Complexity*.

Quick start::

    from repro import core
    from repro.streaming import run_online

    word = core.member(k=2, rng=7)          # a member of L_DISJ
    machine = core.QuantumOnlineRecognizer(rng=7)
    result = run_online(machine, word)
    print(result.accepted, result.space.classical_bits, result.space.qubits)

Packages
--------
* :mod:`repro.core`      — L_DISJ, the quantum recognizer (Thm 3.4),
  amplification (Cor 3.5), classical recognizers (Prop 3.7), separation.
* :mod:`repro.quantum`   — state vectors, the gate set G = {H, T, CNOT},
  Definition 2.3 circuits and their exact Clifford+T compilation.
* :mod:`repro.machines`  — online probabilistic Turing machines
  (Definition 2.1) with exact distribution propagation.
* :mod:`repro.comm`      — communication complexity: DISJ, the BCW
  quantum protocol, fingerprint equality, exact small-n lower bounds,
  and the Theorem 3.6 machine-to-protocol reduction.
* :mod:`repro.streaming` — one-way streams, bit-metered workspaces and
  online-algorithm composition.
* :mod:`repro.qfa`       — quantum finite automata (the footnote-2
  Ambainis-Freivalds state-count separation).
* :mod:`repro.mathx`     — primes, modular arithmetic, Grover angles.
* :mod:`repro.analysis`  — Fact 2.2 counting, report tables, sweeps.
"""

from . import alphabet, errors, rng
from .core import (
    QuantumOnlineRecognizer,
    BlockwiseClassicalRecognizer,
    FullStorageClassicalRecognizer,
    in_ldisj,
    ldisj_word,
    member,
    separation_table,
)
from .streaming import run_online

__version__ = "1.0.0"

__all__ = [
    "alphabet",
    "errors",
    "rng",
    "QuantumOnlineRecognizer",
    "BlockwiseClassicalRecognizer",
    "FullStorageClassicalRecognizer",
    "in_ldisj",
    "ldisj_word",
    "member",
    "separation_table",
    "run_online",
    "__version__",
]
