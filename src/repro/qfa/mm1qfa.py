"""Measure-many one-way quantum finite automata (Kondacs-Watrous).

After every symbol the state is measured against the decomposition
{accepting, rejecting, non-halting}; halting probability mass
accumulates as the word streams.  Strictly more powerful than MO-1QFAs
(and the model Ambainis-Freivalds analyze in full); provided for
completeness and tested on the same mod languages.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import ReproError
from .mo1qfa import _check_unitary

#: End-of-word marker every MM-1QFA reads after the input proper.
END_MARKER = "$"


class MM1QFA:
    """A measure-many 1-way QFA.

    Parameters
    ----------
    unitaries:
        One unitary per symbol, including one for the end marker ``$``.
    initial:
        Normalized start vector.
    accepting, rejecting:
        Disjoint accepting / rejecting basis-state index sets; the rest
        are non-halting.
    """

    def __init__(
        self,
        unitaries: Dict[str, np.ndarray],
        initial: np.ndarray,
        accepting: Sequence[int],
        rejecting: Sequence[int],
    ) -> None:
        if END_MARKER not in unitaries:
            raise ReproError(f"MM-1QFA needs a unitary for the end marker {END_MARKER!r}")
        self.unitaries = {
            sym: _check_unitary(m, f"unitary[{sym!r}]") for sym, m in unitaries.items()
        }
        dims = {m.shape[0] for m in self.unitaries.values()}
        if len(dims) != 1:
            raise ReproError("symbol unitaries must share a dimension")
        (self.n,) = dims
        initial = np.ascontiguousarray(initial, dtype=np.complex128)
        if initial.shape != (self.n,):
            raise ReproError("initial vector has the wrong shape")
        if abs(np.vdot(initial, initial).real - 1.0) > 1e-9:
            raise ReproError("initial vector must be normalized")
        self.initial = initial
        acc = sorted(set(int(i) for i in accepting))
        rej = sorted(set(int(i) for i in rejecting))
        if set(acc) & set(rej):
            raise ReproError("accepting and rejecting sets must be disjoint")
        for i in acc + rej:
            if not 0 <= i < self.n:
                raise ReproError("halting indices out of range")
        self.accepting = acc
        self.rejecting = rej
        self.non_halting = [
            i for i in range(self.n) if i not in set(acc) | set(rej)
        ]

    @property
    def size(self) -> int:
        return self.n

    def acceptance_probability(self, word: str) -> float:
        """Total probability of halting in an accepting state."""
        vec = self.initial.copy()
        p_accept = 0.0
        for ch in word + END_MARKER:
            u = self.unitaries.get(ch)
            if u is None:
                raise ReproError(f"symbol {ch!r} outside the alphabet")
            vec = u @ vec
            p_accept += float(np.sum(np.abs(vec[self.accepting]) ** 2))
            # Collapse: zero out the halting components, continue unnormalized
            # (the standard density formulation; norms track probabilities).
            vec[self.accepting] = 0.0
            vec[self.rejecting] = 0.0
        return p_accept

    def accepts(self, word: str, cutpoint: float = 0.5) -> bool:
        return self.acceptance_probability(word) > cutpoint
