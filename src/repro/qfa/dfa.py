"""Deterministic finite automata with exact minimization.

The classical side of the footnote-2 separation: the unary language
``L_p = {a^i : p | i}`` has Myhill-Nerode index exactly p, so every DFA
for it has >= p states.  Both facts are computed, not asserted:
:func:`minimize_dfa` is a partition-refinement (Moore) minimizer, and
:func:`unary_myhill_nerode_index` computes the index of a unary
language directly from its characteristic sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Sequence, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class DFA:
    """A complete DFA over an explicit alphabet."""

    states: Tuple[str, ...]
    alphabet: Tuple[str, ...]
    transition: Dict[Tuple[str, str], str]
    initial: str
    accepting: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise ReproError("initial state unknown")
        for s in self.states:
            for a in self.alphabet:
                if (s, a) not in self.transition:
                    raise ReproError(f"missing transition ({s!r}, {a!r})")
                if self.transition[(s, a)] not in self.states:
                    raise ReproError(f"transition ({s!r}, {a!r}) leaves the state set")
        if not self.accepting <= set(self.states):
            raise ReproError("accepting states unknown")

    def accepts(self, word: str) -> bool:
        state = self.initial
        for ch in word:
            if ch not in self.alphabet:
                raise ReproError(f"symbol {ch!r} outside the alphabet")
            state = self.transition[(state, ch)]
        return state in self.accepting

    @property
    def size(self) -> int:
        return len(self.states)


def mod_dfa(p: int, residue: int = 0, symbol: str = "a") -> DFA:
    """The p-state DFA for {a^i : i = residue mod p}."""
    if p < 1:
        raise ReproError("p must be >= 1")
    states = tuple(f"q{r}" for r in range(p))
    transition = {(f"q{r}", symbol): f"q{(r + 1) % p}" for r in range(p)}
    return DFA(
        states=states,
        alphabet=(symbol,),
        transition=transition,
        initial="q0",
        accepting=frozenset({f"q{residue % p}"}),
    )


def _reachable(dfa: DFA) -> list[str]:
    seen = [dfa.initial]
    seen_set = {dfa.initial}
    i = 0
    while i < len(seen):
        for a in dfa.alphabet:
            nxt = dfa.transition[(seen[i], a)]
            if nxt not in seen_set:
                seen_set.add(nxt)
                seen.append(nxt)
        i += 1
    return seen


def minimize_dfa(dfa: DFA) -> DFA:
    """Moore partition refinement; returns an equivalent minimal DFA."""
    states = _reachable(dfa)
    # Initial partition: accepting / rejecting.
    block_of: Dict[str, int] = {
        s: (0 if s in dfa.accepting else 1) for s in states
    }
    changed = True
    while changed:
        changed = False
        signature: Dict[str, tuple] = {}
        for s in states:
            signature[s] = (
                block_of[s],
                tuple(block_of[dfa.transition[(s, a)]] for a in dfa.alphabet),
            )
        # Re-number blocks by signature.
        sig_ids: Dict[tuple, int] = {}
        new_block: Dict[str, int] = {}
        for s in states:
            sig = signature[s]
            if sig not in sig_ids:
                sig_ids[sig] = len(sig_ids)
            new_block[s] = sig_ids[sig]
        if new_block != block_of:
            block_of = new_block
            changed = True
    n_blocks = len(set(block_of.values()))
    new_states = tuple(f"m{b}" for b in range(n_blocks))
    transition: Dict[Tuple[str, str], str] = {}
    for s in states:
        for a in dfa.alphabet:
            transition[(f"m{block_of[s]}", a)] = f"m{block_of[dfa.transition[(s, a)]]}"
    accepting = frozenset(f"m{block_of[s]}" for s in states if s in dfa.accepting)
    return DFA(
        states=new_states,
        alphabet=dfa.alphabet,
        transition=transition,
        initial=f"m{block_of[dfa.initial]}",
        accepting=accepting,
    )


def unary_myhill_nerode_index(
    member: Callable[[int], bool], horizon: int
) -> int:
    """Myhill-Nerode index of a unary language from its characteristic
    sequence, distinguishing prefixes a^i and a^j by suffixes up to
    length *horizon*.

    Exact whenever the language's characteristic sequence is (eventually)
    periodic with preperiod + 2 * period <= horizon — true for the mod-p
    languages with horizon >= 2p.  This count is a lower bound on the
    states of any DFA for the language.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    rows = []
    for i in range(horizon):
        rows.append(tuple(member(i + m) for m in range(horizon)))
    return len(set(rows))
