"""Measure-once one-way quantum finite automata (Moore-Crutchfield).

A MO-1QFA applies one unitary per input symbol to a state vector and
performs a single projective measurement at the end; the acceptance
probability is the squared norm of the projection onto the accepting
subspace.  The number of (basis) states is the dimension — the quantity
the footnote-2 separation counts.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import ReproError


def _check_unitary(m: np.ndarray, label: str) -> np.ndarray:
    m = np.ascontiguousarray(m, dtype=np.complex128)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ReproError(f"{label}: matrix must be square")
    if not np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=1e-9):
        raise ReproError(f"{label}: matrix is not unitary")
    return m


class MO1QFA:
    """A measure-once 1-way QFA.

    Parameters
    ----------
    unitaries:
        One unitary per alphabet symbol (shared dimension d).
    initial:
        The start vector (normalized, length d).
    accepting:
        Indices of the accepting basis states (the final measurement
        projects onto their span).
    """

    def __init__(
        self,
        unitaries: Dict[str, np.ndarray],
        initial: np.ndarray,
        accepting: Sequence[int],
    ) -> None:
        if not unitaries:
            raise ReproError("need at least one symbol unitary")
        self.unitaries = {
            sym: _check_unitary(m, f"unitary[{sym!r}]") for sym, m in unitaries.items()
        }
        dims = {m.shape[0] for m in self.unitaries.values()}
        if len(dims) != 1:
            raise ReproError("symbol unitaries must share a dimension")
        (self.n,) = dims
        initial = np.ascontiguousarray(initial, dtype=np.complex128)
        if initial.shape != (self.n,):
            raise ReproError("initial vector has the wrong shape")
        if abs(np.vdot(initial, initial).real - 1.0) > 1e-9:
            raise ReproError("initial vector must be normalized")
        self.initial = initial
        accepting = sorted(set(int(i) for i in accepting))
        if accepting and not (0 <= accepting[0] and accepting[-1] < self.n):
            raise ReproError("accepting indices out of range")
        self.accepting = accepting

    @property
    def size(self) -> int:
        """Number of basis states (the state-count measure)."""
        return self.n

    def final_state(self, word: str) -> np.ndarray:
        vec = self.initial
        for ch in word:
            u = self.unitaries.get(ch)
            if u is None:
                raise ReproError(f"symbol {ch!r} outside the alphabet")
            vec = u @ vec
        return vec

    def acceptance_probability(self, word: str) -> float:
        vec = self.final_state(word)
        return float(np.sum(np.abs(vec[self.accepting]) ** 2))

    def accepts(self, word: str, cutpoint: float = 0.5) -> bool:
        return self.acceptance_probability(word) > cutpoint
