"""The Ambainis-Freivalds O(log p)-state QFA for L_p = {a^i : p | i}.

Construction.  For a multiplier a, a two-dimensional rotation by angle
``2 pi a / p`` per input symbol maps the start vector (1, 0) to
``(cos(2 pi a i / p), sin(2 pi a i / p))`` after i symbols, so measuring
the first coordinate accepts a^i with probability
``cos^2(2 pi a i / p)`` — exactly 1 when p | i, but possibly close to 1
for other i when the single multiplier a is unlucky for that i.

The fix: take m multipliers a_1 .. a_m and run the m rotations as a
*direct sum*, starting in the uniform superposition of the m blocks.
The acceptance probability becomes the average
``(1/m) sum_j cos^2(2 pi a_j i / p)``, and since for every i not
divisible by p the average of cos^2 over *all* multipliers is exactly
1/2 (a character sum), a Chernoff bound makes m = O(log p) random
multipliers give average <= 3/4 simultaneously for every i — bounded
error with exponentially fewer states than the p-state DFA, which is
the footnote-2 separation.

Everything here is explicit: :func:`find_multipliers` searches (with a
seeded RNG) for a multiplier set certified by exhaustive check over all
residues, and :func:`af_qfa_for_mod_language` assembles the actual
:class:`~repro.qfa.mo1qfa.MO1QFA`, whose simulated acceptance the tests
compare against the cosine formula.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..rng import ensure_rng
from .mo1qfa import MO1QFA


def rotation_qfa(p: int, multiplier: int, symbol: str = "a") -> MO1QFA:
    """The single-block (2-state) rotation QFA for multiplier a."""
    if p < 2:
        raise ReproError("p must be >= 2")
    theta = 2.0 * math.pi * (multiplier % p) / p
    c, s = math.cos(theta), math.sin(theta)
    u = np.array([[c, -s], [s, c]], dtype=np.complex128)
    initial = np.array([1.0, 0.0], dtype=np.complex128)
    return MO1QFA({symbol: u}, initial, accepting=[0])


def average_cos2(p: int, multipliers: Sequence[int], i: int) -> float:
    """(1/m) sum_j cos^2(2 pi a_j i / p): the QFA's exact acceptance on a^i."""
    if not multipliers:
        raise ReproError("need at least one multiplier")
    return float(
        np.mean([math.cos(2.0 * math.pi * ((a * i) % p) / p) ** 2 for a in multipliers])
    )


def worst_nonmember_acceptance(p: int, multipliers: Sequence[int]) -> float:
    """max over i in {1, ..., p-1} of the acceptance probability on a^i.

    Exhaustive over all nonzero residues — the certificate that a
    multiplier set achieves bounded error (the sequence cos^2 is
    periodic in i with period p, so checking one period is exact).
    """
    return max(average_cos2(p, multipliers, i) for i in range(1, p))


def find_multipliers(
    p: int,
    target: float = 0.75,
    rng=None,
    max_rounds: int = 64,
) -> List[int]:
    """A multiplier set with worst non-member acceptance <= *target*.

    Draws batches of random multipliers, growing the set until the
    exhaustive certificate passes; the expected final size is O(log p)
    (Chernoff + union bound over the p - 1 residues), and the observed
    sizes in experiment E9 track ~2 log2 p.
    """
    if p < 2:
        raise ReproError("p must be >= 2")
    if not 0.5 < target < 1.0:
        raise ReproError("target must lie in (0.5, 1.0)")
    gen = ensure_rng(rng)
    multipliers: List[int] = [1]
    for _ in range(max_rounds):
        if worst_nonmember_acceptance(p, multipliers) <= target:
            return multipliers
        multipliers.append(int(gen.integers(1, p)))
    raise ReproError(
        f"no certified multiplier set of size <= {max_rounds} found for p = {p}"
    )


def af_qfa_for_mod_language(
    p: int,
    target: float = 0.75,
    rng=None,
    multipliers: Optional[Sequence[int]] = None,
    symbol: str = "a",
) -> Tuple[MO1QFA, List[int]]:
    """Build the direct-sum MO-1QFA for L_p; returns (qfa, multipliers).

    The automaton has ``2 m`` basis states for m multipliers; its exact
    acceptance probability on a^i is ``(1/m) sum_j cos^2(2 pi a_j i/p)``.
    """
    if multipliers is None:
        multipliers = find_multipliers(p, target=target, rng=rng)
    multipliers = list(multipliers)
    m = len(multipliers)
    dim = 2 * m
    u = np.zeros((dim, dim), dtype=np.complex128)
    for j, a in enumerate(multipliers):
        theta = 2.0 * math.pi * (a % p) / p
        c, s = math.cos(theta), math.sin(theta)
        u[2 * j : 2 * j + 2, 2 * j : 2 * j + 2] = [[c, -s], [s, c]]
    initial = np.zeros(dim, dtype=np.complex128)
    initial[0::2] = 1.0 / math.sqrt(m)
    qfa = MO1QFA({symbol: u}, initial, accepting=list(range(0, dim, 2)))
    return qfa, multipliers
