"""Probabilistic finite automata (stochastic-matrix semantics).

Included as the classical randomized point of comparison: Rabin PFAs
with an *isolated cutpoint* also need ~p states for the mod-p language
(the footnote-2 separation is quantum vs all classical automata), and
having a runnable PFA keeps the comparison concrete.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import ReproError


class PFA:
    """A PFA: row-stochastic matrix per symbol, initial row, accept vector."""

    def __init__(
        self,
        matrices: Dict[str, np.ndarray],
        initial: np.ndarray,
        accepting: np.ndarray,
    ) -> None:
        if not matrices:
            raise ReproError("need at least one symbol matrix")
        dims = {m.shape for m in matrices.values()}
        if len(dims) != 1:
            raise ReproError("symbol matrices must share a shape")
        (shape,) = dims
        if shape[0] != shape[1]:
            raise ReproError("symbol matrices must be square")
        self.n = shape[0]
        for sym, m in matrices.items():
            if np.any(m < -1e-12) or not np.allclose(m.sum(axis=1), 1.0, atol=1e-9):
                raise ReproError(f"matrix for {sym!r} is not row-stochastic")
        initial = np.asarray(initial, dtype=np.float64)
        accepting = np.asarray(accepting, dtype=np.float64)
        if initial.shape != (self.n,) or accepting.shape != (self.n,):
            raise ReproError("initial/accepting vectors have the wrong shape")
        if abs(initial.sum() - 1.0) > 1e-9 or np.any(initial < -1e-12):
            raise ReproError("initial vector must be a distribution")
        if np.any((accepting < -1e-12) | (accepting > 1 + 1e-12)):
            raise ReproError("accepting vector entries must lie in [0, 1]")
        self.matrices = {s: np.ascontiguousarray(m, dtype=np.float64) for s, m in matrices.items()}
        self.initial = initial
        self.accepting = accepting

    @property
    def size(self) -> int:
        return self.n

    def acceptance_probability(self, word: str) -> float:
        row = self.initial
        for ch in word:
            m = self.matrices.get(ch)
            if m is None:
                raise ReproError(f"symbol {ch!r} outside the alphabet")
            row = row @ m
        return float(row @ self.accepting)

    def accepts(self, word: str, cutpoint: float = 0.5) -> bool:
        return self.acceptance_probability(word) > cutpoint


def mod_pfa(p: int, residue: int = 0, symbol: str = "a") -> PFA:
    """The deterministic mod-p counter expressed as a (degenerate) PFA."""
    if p < 1:
        raise ReproError("p must be >= 1")
    m = np.zeros((p, p))
    for r in range(p):
        m[r, (r + 1) % p] = 1.0
    initial = np.zeros(p)
    initial[0] = 1.0
    accepting = np.zeros(p)
    accepting[residue % p] = 1.0
    return PFA({symbol: m}, initial, accepting)
