"""Quantum finite automata: the footnote-2 companion separation.

The paper notes (footnote 2) that in the automata world, Ambainis and
Freivalds showed quantum automata can recognize some languages with
exponentially fewer states than any classical automaton.  This package
reproduces that companion result for the canonical witness language

    L_p = { a^i : i is divisible by p }   (p prime):

* any DFA needs exactly p states (Myhill-Nerode, computed exactly);
* a measure-once QFA built from O(log p) two-dimensional rotation
  blocks recognizes L_p with bounded error.

Modules
-------
* :mod:`repro.qfa.dfa` — DFAs, partition-refinement minimization,
  unary Myhill-Nerode index.
* :mod:`repro.qfa.pfa` — probabilistic automata (stochastic matrices).
* :mod:`repro.qfa.mo1qfa` — measure-once quantum automata.
* :mod:`repro.qfa.mm1qfa` — measure-many quantum automata.
* :mod:`repro.qfa.ambainis_freivalds` — the O(log p)-state construction.
"""

from .dfa import DFA, mod_dfa, minimize_dfa, unary_myhill_nerode_index
from .pfa import PFA, mod_pfa
from .mo1qfa import MO1QFA
from .mm1qfa import MM1QFA
from .ambainis_freivalds import (
    rotation_qfa,
    find_multipliers,
    af_qfa_for_mod_language,
    worst_nonmember_acceptance,
)

__all__ = [
    "DFA",
    "mod_dfa",
    "minimize_dfa",
    "unary_myhill_nerode_index",
    "PFA",
    "mod_pfa",
    "MO1QFA",
    "MM1QFA",
    "rotation_qfa",
    "find_multipliers",
    "af_qfa_for_mod_language",
    "worst_nonmember_acceptance",
]
