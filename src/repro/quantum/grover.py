"""Grover dynamics of procedure A3, simulated exactly.

One loop-3 iteration of the paper is ``U_k S_k U_k V_z W_y V_x``; with
x = z this is exactly one Grover iteration for the oracle marking
``{i : x_i = y_i = 1}``.  :class:`GroverA3` evolves the full state
vector through j iterations and the step-4 finish (``R_y V_x``) and
reads off the exact probability that the final measurement of the last
qubit yields 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import QuantumError
from .state import bit_where
from .operators import (
    RxOperator,
    SkOperator,
    UkOperator,
    VxOperator,
    WxOperator,
    initial_phi,
)
from .registers import A3Registers


def marked_probability(vec: np.ndarray, regs: A3Registers) -> float:
    """Exact probability that measuring the l qubit yields 1."""
    if vec.size != regs.dimension:
        raise QuantumError("state has the wrong dimension")
    mask = bit_where(regs.dimension, regs.l_qubit)
    return float(np.sum(np.abs(vec[mask]) ** 2))


def marked_probabilities(batch, regs: A3Registers, xp=None) -> np.ndarray:
    """Per-row Pr[measuring l yields 1] for a ``(B, dim)`` state batch.

    The batched counterpart of :func:`marked_probability`: *batch* may
    live in any array namespace (*xp*; numpy when omitted) and the
    result always comes back as a host numpy ``float64`` array.  Each
    row is reduced by its own 1-D sum over the gathered l = 1 columns —
    bit-identical to calling :func:`marked_probability` row by row (an
    axis-reduction is *not*: NumPy orders the two differently, and the
    engine's measurement coins compare against these exact floats).
    """
    from ..xp import to_numpy

    xp = np if xp is None else xp
    if batch.ndim != 2 or batch.shape[-1] != regs.dimension:
        raise QuantumError("state batch has the wrong shape")
    mask = bit_where(regs.dimension, regs.l_qubit, None if xp is np else xp)
    probs = xp.abs(batch[..., mask]) ** 2
    return np.array([float(to_numpy(xp.sum(probs[i]))) for i in range(batch.shape[0])])


class GroverA3:
    """Exact state evolution of procedure A3 for fixed strings.

    Parameters
    ----------
    k:
        Size parameter; strings have length N = 2^{2k}.
    x, y:
        The two input strings; ``z`` defaults to x (condition (ii) of
        the paper guarantees z = x on well-formed inputs, but a
        different z may be passed to study what A3 does on inputs that
        *violate* condition (ii)).
    """

    def __init__(self, k: int, x: str, y: str, z: Optional[str] = None) -> None:
        self.regs = A3Registers(k)
        self.x = x
        self.y = y
        self.z = x if z is None else z
        self._vx = VxOperator(self.regs, self.x)
        self._wy = WxOperator(self.regs, self.y)
        self._vz = VxOperator(self.regs, self.z)
        self._uk = UkOperator(self.regs)
        self._sk = SkOperator(self.regs)
        self._ry = RxOperator(self.regs, self.y)

    @property
    def t(self) -> int:
        """Number of intersecting indices |{i : x_i = y_i = 1}|."""
        return sum(1 for a, b in zip(self.x, self.y) if a == "1" and b == "1")

    def iterate(self, vec: np.ndarray) -> np.ndarray:
        """One loop-3 iteration: U_k S_k U_k V_z W_y V_x."""
        vec = self._vx.apply(vec)
        vec = self._wy.apply(vec)
        vec = self._vz.apply(vec)
        vec = self._uk.apply(vec)
        vec = self._sk.apply(vec)
        vec = self._uk.apply(vec)
        return vec

    def state_after(self, iterations: int) -> np.ndarray:
        """State after step 4 with j = *iterations*: R_y V_x (loop)^j |phi_k>."""
        if iterations < 0:
            raise QuantumError("iterations must be non-negative")
        vec = initial_phi(self.regs)
        for _ in range(iterations):
            vec = self.iterate(vec)
        vec = self._vx.apply(vec)
        vec = self._ry.apply(vec)
        return vec

    def detection_probability(self, iterations: int) -> float:
        """Exact Pr[measurement of l yields 1] after j iterations.

        For z = x this equals ``sin^2((2j+1) theta)`` with
        ``sin^2(theta) = t / N`` — the Grover/BBHT formula the paper
        cites; tests check the two against each other.
        """
        return marked_probability(self.state_after(iterations), self.regs)

    def average_detection_probability(self, m: Optional[int] = None) -> float:
        """Average of :meth:`detection_probability` over j uniform in {0..m-1}.

        ``m`` defaults to 2^k, the paper's choice.  This is the exact
        probability that one run of A3 (with its random j) measures 1.
        """
        m = (1 << self.regs.k) if m is None else m
        if m < 1:
            raise QuantumError("m must be >= 1")
        return float(
            np.mean([self.detection_probability(j) for j in range(m)])
        )

    def a3_output_distribution(self, m: Optional[int] = None) -> dict[int, float]:
        """Distribution of A3's output bit (output = 1 - measured b)."""
        p1 = self.average_detection_probability(m)
        return {0: p1, 1: 1.0 - p1}
