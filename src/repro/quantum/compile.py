"""Exact compilation of procedure A3 to the gate set G = {H, T, CNOT}.

Definition 2.3 machines do not get to apply ``V_x`` as a primitive: they
must *output a circuit over G*.  Every operator A3 uses is a classical
reversible/diagonal operation, so it lowers to Clifford+T **exactly**
(no Solovay-Kitaev approximation anywhere):

* X = H T^4 H,  Z = T^4,  S = T^2,  CZ = (I x H) CNOT (I x H);
* Toffoli — the standard 15-gate, 7-T decomposition;
* C^r X for r >= 3 — a Toffoli ladder through r - 2 clean ancillas
  (computed then uncomputed, so ancillas return to |0>);
* negative controls — X conjugation;
* ``V_x``: for each i with x_i = 1, a C^{2k}X onto h with the index
  register pattern-matched to i;
* ``W_x``: for each i with x_i = 1, a pattern-matched C-Z onto h;
* ``R_x``: for each i with x_i = 1, a C^{2k+1}X onto l (controls:
  index pattern and h);
* ``S_k``: phase -1 on i != 0 equals, up to a global phase of -1,
  phase -1 on i = 0: X on every index qubit, a pattern C-Z, X again.
* ``U_k``: H on each index qubit (native).

Ancilla budget: ``max(2k + 1, 2) - 2 = 2k - 1`` clean ancillas placed
after the l qubit, so a compiled A3 uses ``4k + 1`` qubits total —
still O(k) = O(log n), which is the point of Theorem 3.4.

Gate counts grow as O(N poly(k)) per operator (N = 2^{2k}); that is
exponential in k but irrelevant to the *space* claims (Definition 2.3
allows up to 2^{s(n)} gates, and these circuits sit far below that
bound — checked in experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..alphabet import validate_bitstring
from ..errors import QuantumError
from .circuit import Circuit
from .registers import A3Registers


def ancillas_needed(k: int) -> int:
    """Clean ancillas required to compile every A3 operator for this k."""
    max_controls = 2 * k + 1  # R_x has the most controls
    return max(0, max_controls - 2)


def total_compiled_qubits(k: int) -> int:
    """Qubits of a compiled A3 circuit: algorithm registers + ancillas."""
    return A3Registers(k).total_qubits + ancillas_needed(k)


def toffoli(circuit: Circuit, c0: int, c1: int, target: int) -> Circuit:
    """The standard 15-gate Clifford+T Toffoli (exact)."""
    if len({c0, c1, target}) != 3:
        raise QuantumError("Toffoli needs three distinct qubits")
    circuit.h(target)
    circuit.cnot(c1, target)
    circuit.t_dagger(target)
    circuit.cnot(c0, target)
    circuit.t(target)
    circuit.cnot(c1, target)
    circuit.t_dagger(target)
    circuit.cnot(c0, target)
    circuit.t(c1)
    circuit.t(target)
    circuit.cnot(c0, c1)
    circuit.h(target)
    circuit.t(c0)
    circuit.t_dagger(c1)
    circuit.cnot(c0, c1)
    return circuit


def mcx(
    circuit: Circuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> Circuit:
    """Multi-controlled X with clean (|0>) ancillas, computed/uncomputed.

    ``len(controls) - 2`` ancillas are consumed for r >= 3 controls; the
    ladder ANDs the controls pairwise into the ancilla chain, fires the
    final Toffoli into *target*, then runs the ladder in reverse so
    every ancilla returns to |0> exactly.
    """
    controls = list(controls)
    r = len(controls)
    if len(set(controls + [target])) != r + 1:
        raise QuantumError("mcx qubits must be distinct")
    if r == 0:
        return circuit.x(target)
    if r == 1:
        return circuit.cnot(controls[0], target)
    if r == 2:
        return toffoli(circuit, controls[0], controls[1], target)
    need = r - 2
    if len(ancillas) < need:
        raise QuantumError(f"mcx with {r} controls needs {need} ancillas")
    anc = list(ancillas[:need])
    toffoli(circuit, controls[0], controls[1], anc[0])
    for i in range(2, r - 1):
        toffoli(circuit, controls[i], anc[i - 2], anc[i - 1])
    toffoli(circuit, controls[r - 1], anc[r - 3], target)
    for i in reversed(range(2, r - 1)):
        toffoli(circuit, controls[i], anc[i - 2], anc[i - 1])
    toffoli(circuit, controls[0], controls[1], anc[0])
    return circuit


def mcz(
    circuit: Circuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> Circuit:
    """Multi-controlled Z: H-conjugated :func:`mcx` (Z = H X H)."""
    if not controls:
        return circuit.z(target)
    circuit.h(target)
    mcx(circuit, controls, target, ancillas)
    circuit.h(target)
    return circuit


def _with_pattern(
    circuit: Circuit, qubits: Sequence[int], pattern: int
) -> list[int]:
    """X-flip the qubits whose pattern bit is 0 (call again to undo)."""
    for pos, q in enumerate(qubits):
        if not (pattern >> pos) & 1:
            circuit.x(q)
    return list(qubits)


def pattern_mcx(
    circuit: Circuit,
    qubits: Sequence[int],
    pattern: int,
    target: int,
    ancillas: Sequence[int],
) -> Circuit:
    """X on *target* iff the *qubits* hold exactly *pattern* (bit pos order)."""
    _with_pattern(circuit, qubits, pattern)
    mcx(circuit, qubits, target, ancillas)
    _with_pattern(circuit, qubits, pattern)
    return circuit


def pattern_mcz(
    circuit: Circuit,
    qubits: Sequence[int],
    pattern: int,
    target: int,
    ancillas: Sequence[int],
) -> Circuit:
    """Phase -1 iff the *qubits* hold *pattern* and *target* is 1."""
    _with_pattern(circuit, qubits, pattern)
    mcz(circuit, qubits, target, ancillas)
    _with_pattern(circuit, qubits, pattern)
    return circuit


@dataclass(frozen=True)
class A3Compiler:
    """Compiles A3 operators for a fixed k onto a shared qubit layout."""

    k: int

    @property
    def regs(self) -> A3Registers:
        return A3Registers(self.k)

    @property
    def n_qubits(self) -> int:
        return total_compiled_qubits(self.k)

    @property
    def ancillas(self) -> list[int]:
        return list(self.regs.ancilla_range(ancillas_needed(self.k)))

    def new_circuit(self) -> Circuit:
        return Circuit(self.n_qubits)

    def _index_qubits(self) -> list[int]:
        return list(range(self.regs.index_qubits))

    def _marked(self, x: str) -> list[int]:
        validate_bitstring(x)
        if len(x) != self.regs.string_length:
            raise QuantumError(
                f"string length {len(x)} != {self.regs.string_length}"
            )
        return [i for i, ch in enumerate(x) if ch == "1"]

    # -- operator lowerings ------------------------------------------------

    def add_uk(self, circuit: Circuit) -> Circuit:
        for q in self._index_qubits():
            circuit.h(q)
        return circuit

    def add_sk(self, circuit: Circuit) -> Circuit:
        """Compiles to -S_k (global phase -1; harmless, documented).

        -S_k is the phase flip on i = 0: X every index qubit, fire a
        multi-controlled Z across them, X back.
        """
        iq = self._index_qubits()
        for q in iq:
            circuit.x(q)
        mcz(circuit, iq[:-1], iq[-1], self.ancillas)
        for q in iq:
            circuit.x(q)
        return circuit

    def add_vx(self, circuit: Circuit, x: str) -> Circuit:
        iq = self._index_qubits()
        for i in self._marked(x):
            pattern_mcx(circuit, iq, i, self.regs.h_qubit, self.ancillas)
        return circuit

    def add_wx(self, circuit: Circuit, x: str) -> Circuit:
        iq = self._index_qubits()
        for i in self._marked(x):
            pattern_mcz(circuit, iq, i, self.regs.h_qubit, self.ancillas)
        return circuit

    def add_rx(self, circuit: Circuit, x: str) -> Circuit:
        iq = self._index_qubits()
        for i in self._marked(x):
            _with_pattern(circuit, iq, i)
            mcx(circuit, iq + [self.regs.h_qubit], self.regs.l_qubit, self.ancillas)
            _with_pattern(circuit, iq, i)
        return circuit

    # -- whole-procedure compilation -------------------------------------

    def compile_a3(
        self, x: str, y: str, j: int, z: Optional[str] = None
    ) -> Circuit:
        """The full A3 circuit for iteration count j, from |0...0>.

        Layout: step 1's |phi_k> preparation is U_k from |0...0>; then j
        copies of loop 3; then step 4.  Up to an overall global phase of
        (-1)^j (from the S_k lowering) this is exactly the state the
        paper's procedure holds before its measurement.
        """
        if j < 0:
            raise QuantumError("iteration count must be non-negative")
        z = x if z is None else z
        circuit = self.new_circuit()
        self.add_uk(circuit)  # |0..0> -> |phi_k>
        for _ in range(j):
            self.add_vx(circuit, x)
            self.add_wx(circuit, y)
            self.add_vx(circuit, z)
            self.add_uk(circuit)
            self.add_sk(circuit)
            self.add_uk(circuit)
        self.add_vx(circuit, x)
        self.add_rx(circuit, y)
        return circuit


def lift_state(vec, total_qubits: int):
    """Embed an algorithm-register state into the compiled layout.

    Ancillas are the high qubits and start in |0>, so the lifted state
    is the original amplitudes followed by zeros.
    """
    import numpy as np

    dim = 1 << total_qubits
    if vec.size > dim:
        raise QuantumError("state too large for the target layout")
    out = np.zeros(dim, dtype=np.complex128)
    out[: vec.size] = vec
    return out


def project_ancillas_zero(vec, algo_qubits: int, atol: float = 1e-9):
    """Strip ancillas, asserting they really are back in |0>.

    Raises if any amplitude mass lives outside the ancilla-zero block —
    that would mean a compiled operator failed to uncompute.
    """
    import numpy as np

    dim = 1 << algo_qubits
    head = vec[:dim]
    tail_norm = float(np.sum(np.abs(vec[dim:]) ** 2))
    if tail_norm > atol:
        raise QuantumError(
            f"ancillas not returned to |0>: leaked probability {tail_norm:.3e}"
        )
    return np.ascontiguousarray(head)
