"""Peephole optimization of G-circuits.

The compiled Definition 2.3 circuits are generated mechanically and
contain obvious local redundancies (adjacent self-inverse pairs, runs of
T gates).  This optimizer applies exact, semantics-preserving rewrites:

* ``H a ; H a``          -> (nothing)
* ``CNOT a b ; CNOT a b`` -> (nothing)
* ``T a * 8``            -> (nothing)   (runs of T are folded mod 8)
* identity triples (a == b) are dropped.

Rewrites commute only with *adjacency on the same qubits*: a pair is
cancelled only when no intervening gate touches either qubit, which the
pass tracks conservatively.  Tests assert the optimized circuit's
unitary equals the original's exactly and that compiled-A3 sizes shrink.
"""

from __future__ import annotations

from typing import List, Optional

from .circuit import Circuit, GateOp, GATE_CNOT, GATE_H, GATE_T


def _touches(op: GateOp) -> set[int]:
    if op.is_identity:
        return set()
    if op.gate == GATE_CNOT:
        return {op.a, op.b}
    return {op.a}


def _same_gate(a: GateOp, b: GateOp) -> bool:
    if a.gate != b.gate:
        return False
    if a.gate == GATE_CNOT:
        return (a.a, a.b) == (b.a, b.b)
    return a.a == b.a


def optimize_circuit(circuit: Circuit, passes: int = 8) -> Circuit:
    """Apply the peephole rewrites until a fixed point (or *passes* sweeps)."""
    ops: List[GateOp] = [op for op in circuit.ops if not op.is_identity]
    for _ in range(passes):
        changed = False
        # -- fold runs of T on the same qubit (mod 8) -------------------
        folded: List[GateOp] = []
        i = 0
        while i < len(ops):
            op = ops[i]
            if op.gate == GATE_T:
                run = 1
                j = i + 1
                while j < len(ops) and ops[j].gate == GATE_T and ops[j].a == op.a:
                    run += 1
                    j += 1
                if run % 8 != run or run >= 8:
                    changed = True
                for _ in range(run % 8):
                    folded.append(op)
                i = j
            else:
                folded.append(op)
                i += 1
        ops = folded
        # -- cancel adjacent self-inverse pairs (H, CNOT) ----------------
        out: List[GateOp] = []
        for op in ops:
            if (
                op.gate in (GATE_H, GATE_CNOT)
                and out
                and _same_gate(out[-1], op)
            ):
                out.pop()
                changed = True
            else:
                out.append(op)
        ops = out
        # -- commute-aware cancellation: look back past gates on disjoint
        #    qubits for a cancelling partner -----------------------------
        result: List[GateOp] = []
        for op in ops:
            partner: Optional[int] = None
            if op.gate in (GATE_H, GATE_CNOT):
                blocked: set[int] = set()
                for back in range(len(result) - 1, -1, -1):
                    prev = result[back]
                    if _same_gate(prev, op) and not (_touches(op) & blocked):
                        partner = back
                        break
                    blocked |= _touches(prev)
                    if _touches(op) & blocked:
                        break
            if partner is not None:
                result.pop(partner)
                changed = True
            else:
                result.append(op)
        ops = result
        if not changed:
            break
    optimized = Circuit(circuit.n_qubits)
    for op in ops:
        optimized.append(op)
    return optimized


def optimization_report(before: Circuit, after: Circuit) -> dict:
    """Gate-count comparison for benchmarks."""
    b = before.gate_counts()
    a = after.gate_counts()
    total_b = len(before)
    total_a = len(after)
    return {
        "before": total_b,
        "after": total_a,
        "saved": total_b - total_a,
        "saved_fraction": (total_b - total_a) / max(1, total_b),
        "before_counts": b,
        "after_counts": a,
    }
