"""Quantum substrate: exact state-vector simulation of Definition 2.3.

The paper's quantum online machines output a description of a circuit
over the universal gate set ``G = {H, T, CNOT}`` which is then applied
to ``|0...0>`` and measured.  This package implements that pipeline
end to end:

* :mod:`repro.quantum.state` — state vectors and measurement statistics.
* :mod:`repro.quantum.gates` — the gate set ``G`` plus derived gates,
  with vectorized application.
* :mod:`repro.quantum.circuit` — circuits over ``G`` (Definition 2.3's
  ``G_c^{[a,b]}`` operations, including the a == b identity convention).
* :mod:`repro.quantum.encoding` — the output-tape codec
  ``a_1#b_1#c_1#...#a_r#b_r#c_r`` over the ternary alphabet.
* :mod:`repro.quantum.registers` — the |i>|h>|l> register layout of
  procedure A3.
* :mod:`repro.quantum.operators` — the paper's operators (phi_k, S_k,
  V_x, W_x, U_k, R_x) as fast vectorized actions.
* :mod:`repro.quantum.grover` — Grover iterations built from those
  operators, and the A3 state evolution.
* :mod:`repro.quantum.bbht` — iteration-count strategies (fixed vs
  BBHT-random) and their exact success probabilities.
* :mod:`repro.quantum.compile` — exact lowering of every operator above
  to ``G`` (Toffoli ladders with clean ancillas), so the formal
  Definition 2.3 machine can actually be produced and checked.
"""

from .state import (
    StateVector,
    BatchedStateVector,
    zero_state,
    basis_state,
    basis_indices,
    bit_where,
)
from .gates import H, T, T_DAGGER, X, Y, Z, S, CNOT_MATRIX, apply_single, apply_two
from .circuit import Circuit, GateOp, GATE_NAMES
from .encoding import encode_circuit, decode_circuit
from .registers import A3Registers
from .operators import (
    initial_phi,
    SkOperator,
    VxOperator,
    WxOperator,
    UkOperator,
    RxOperator,
)
from .grover import GroverA3, marked_probability
from .bbht import (
    fixed_j_success,
    random_j_success,
    worst_case_fixed_j,
    success_table,
)
from .density import DensityMatrix, NoisyGroverA3
from .optimize import optimize_circuit, optimization_report

__all__ = [
    "StateVector",
    "BatchedStateVector",
    "basis_indices",
    "bit_where",
    "zero_state",
    "basis_state",
    "H",
    "T",
    "T_DAGGER",
    "X",
    "Y",
    "Z",
    "S",
    "CNOT_MATRIX",
    "apply_single",
    "apply_two",
    "Circuit",
    "GateOp",
    "GATE_NAMES",
    "encode_circuit",
    "decode_circuit",
    "A3Registers",
    "initial_phi",
    "SkOperator",
    "VxOperator",
    "WxOperator",
    "UkOperator",
    "RxOperator",
    "GroverA3",
    "marked_probability",
    "fixed_j_success",
    "random_j_success",
    "worst_case_fixed_j",
    "success_table",
    "DensityMatrix",
    "NoisyGroverA3",
    "optimize_circuit",
    "optimization_report",
]
