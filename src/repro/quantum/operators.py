"""The paper's operators as fast vectorized actions on state vectors.

Procedure A3 (proof of Theorem 3.4) uses, on the |i>|h>|l> layout of
:class:`~repro.quantum.registers.A3Registers`:

* ``|phi_k>`` — uniform over i with h = l = 0 (:func:`initial_phi`);
* ``S_k``    — phase -1 on every basis state with i != 0;
* ``V_x``    — |i>|h>|l> -> |i>|h xor x_i>|l>;
* ``W_x``    — phase (-1)^{h and x_i};
* ``U_k``    — H on each index qubit (identity on h, l);
* ``R_x``    — |i>|h>|l> -> |i>|h>|l xor (h and x_i)>.

All of these are diagonal or permutation operators except ``U_k``; the
permutations/signs are precomputed as index arrays at construction
(``O(N)`` once), so applying an operator is a single fancy-index or
multiply, and ``U_k`` is a fast Walsh-Hadamard transform — no Python
loops over amplitudes anywhere.

Every operator accepts either a single state of shape ``(dim,)`` or a
batch of shape ``(B, dim)`` (the execution engine's dense backend): the
permutation / sign tables broadcast over the leading batch axis, so one
call advances all B trials.

Operators take an optional array-namespace parameter ``xp`` (see
:mod:`repro.xp`; numpy when omitted): the permutation / sign tables are
built host-side once and placed in that namespace, so ``apply`` runs
entirely on the namespace's device when the state batch lives there.

Operators also expose ``unitary()`` (dense matrix, small k) for the
compiler's exactness tests.
"""

from __future__ import annotations

import numpy as np

from ..alphabet import validate_bitstring
from ..errors import QuantumError
from .gates import walsh_hadamard_in_place
from .registers import A3Registers
from .state import basis_indices, bit_where


def initial_phi(regs: A3Registers) -> np.ndarray:
    """|phi_k> = (1/2^k) sum_i |i>|0>|0>."""
    vec = np.zeros(regs.dimension, dtype=np.complex128)
    vec[: regs.string_length] = 1.0 / np.sqrt(regs.string_length)
    return vec


def _bit_table(regs: A3Registers, x: str) -> np.ndarray:
    """x_i looked up for every basis index (the i part of the index)."""
    validate_bitstring(x)
    if len(x) != regs.string_length:
        raise QuantumError(
            f"string length {len(x)} != N = {regs.string_length} for k = {regs.k}"
        )
    bits = np.frombuffer(x.encode("ascii"), dtype=np.uint8) - ord("0")
    idx = basis_indices(regs.dimension)
    return bits[idx & regs.index_mask].astype(np.int64)


def _in_namespace(table: np.ndarray, xp):
    """A host-built table, placed in *xp* (numpy passes through)."""
    if xp is None or xp is np:
        return table
    return xp.asarray(table)


class _BaseOperator:
    """Shared plumbing: dimension checks and dense-matrix extraction."""

    name = "op"

    def __init__(self, regs: A3Registers, xp=None) -> None:
        self.regs = regs
        self.xp = np if xp is None else xp

    def apply(self, vec: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, vec: np.ndarray) -> None:
        if vec.ndim not in (1, 2) or vec.shape[-1] != self.regs.dimension:
            raise QuantumError(
                f"{self.name}: state has shape {vec.shape}, expected "
                f"({self.regs.dimension},) or (B, {self.regs.dimension})"
            )

    def unitary(self) -> np.ndarray:
        """Dense matrix (for small k; compiler/equality tests only)."""
        dim = self.regs.dimension
        if dim > 1 << 12:
            raise QuantumError("unitary() is for small k only")
        out = np.zeros((dim, dim), dtype=np.complex128)
        eye = np.eye(dim, dtype=np.complex128)
        for col in range(dim):
            out[:, col] = self.apply(eye[:, col].copy())
        return out


class SkOperator(_BaseOperator):
    """Phase -1 on |i>|h>|l> for i != 0 (identity on i = 0)."""

    name = "S_k"

    def __init__(self, regs: A3Registers, xp=None) -> None:
        super().__init__(regs, xp)
        idx = basis_indices(regs.dimension)
        self._signs = _in_namespace(
            np.where((idx & regs.index_mask) != 0, -1.0, 1.0), self.xp
        )

    def apply(self, vec: np.ndarray) -> np.ndarray:
        self._check(vec)
        vec *= self._signs
        return vec


class VxOperator(_BaseOperator):
    """|i>|h>|l> -> |i>|h xor x_i>|l> (a permutation; an involution)."""

    name = "V_x"

    def __init__(self, regs: A3Registers, x: str, xp=None) -> None:
        super().__init__(regs, xp)
        self.x = x
        xi = _bit_table(regs, x)
        idx = basis_indices(regs.dimension)
        self._perm = _in_namespace(idx ^ (xi << regs.h_qubit), self.xp)

    def apply(self, vec: np.ndarray) -> np.ndarray:
        self._check(vec)
        return vec[..., self._perm]


class WxOperator(_BaseOperator):
    """Phase (-1)^{h and x_i} (diagonal)."""

    name = "W_x"

    def __init__(self, regs: A3Registers, x: str, xp=None) -> None:
        super().__init__(regs, xp)
        self.x = x
        xi = _bit_table(regs, x)
        h = bit_where(regs.dimension, regs.h_qubit).astype(np.int64)
        self._signs = _in_namespace(np.where((h & xi) == 1, -1.0, 1.0), self.xp)

    def apply(self, vec: np.ndarray) -> np.ndarray:
        self._check(vec)
        vec *= self._signs
        return vec


class UkOperator(_BaseOperator):
    """H on each of the 2k index qubits; identity on h and l.

    Implemented as a Walsh-Hadamard transform over the index axis: the
    state reshapes (as a view) to (..., 4, N) with the middle axis
    indexed by (l, h) — a leading batch axis passes through untouched.
    """

    name = "U_k"

    def apply(self, vec: np.ndarray) -> np.ndarray:
        self._check(vec)
        block = vec.reshape(vec.shape[:-1] + (4, self.regs.string_length))
        walsh_hadamard_in_place(block)
        return vec


class RxOperator(_BaseOperator):
    """|i>|h>|l> -> |i>|h>|l xor (h and x_i)> (a permutation)."""

    name = "R_x"

    def __init__(self, regs: A3Registers, x: str, xp=None) -> None:
        super().__init__(regs, xp)
        self.x = x
        xi = _bit_table(regs, x)
        idx = basis_indices(regs.dimension)
        h = bit_where(regs.dimension, regs.h_qubit).astype(np.int64)
        self._perm = _in_namespace(idx ^ ((h & xi) << regs.l_qubit), self.xp)

    def apply(self, vec: np.ndarray) -> np.ndarray:
        self._check(vec)
        return vec[..., self._perm]


def vwv_phase_check(regs: A3Registers, x: str, y: str) -> np.ndarray:
    """The diagonal of V_x W_y V_x restricted to h = l = 0.

    The paper's key equality: ``V_x W_y V_x`` acts on
    ``sum_i a_i |i>|0>|0>`` as the phase flip ``(-1)^{x_i and y_i}`` —
    i.e. exactly the Grover oracle for the intersection.  Returned as
    the length-N sign vector for tests.
    """
    vx = VxOperator(regs, x)
    wy = WxOperator(regs, y)
    dim = regs.dimension
    signs = np.zeros(regs.string_length)
    for i in range(regs.string_length):
        vec = np.zeros(dim, dtype=np.complex128)
        vec[i] = 1.0
        vec = vx.apply(vec)
        vec = wy.apply(vec)
        vec = vx.apply(vec)
        signs[i] = vec[i].real
    return signs
