"""Iteration-count strategies and their success probabilities.

The number of intersecting indices ``t`` is unknown to the algorithm, so
a *fixed* Grover iteration count can fail badly for some t (it can even
drive the success probability to ~0 by overshooting).  Boyer, Brassard,
Hoyer and Tapp's remedy — pick j uniformly from {0, ..., m-1} — gives
average success >= 1/4 for every 0 < t < N once m >= 1/sin(2 theta).
This module provides both strategies analytically (closed forms from
:mod:`repro.mathx.angles`) so experiment E2 can contrast them and check
the simulator against the formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..mathx.angles import (
    average_success_probability,
    grover_success_probability,
)


def fixed_j_success(t: int, n: int, j: int) -> float:
    """Success probability of exactly j iterations: sin^2((2j+1) theta)."""
    return grover_success_probability(t, n, j)


def random_j_success(t: int, n: int, m: int) -> float:
    """Success probability of the BBHT strategy (j uniform in {0..m-1})."""
    return average_success_probability(t, n, m)


def worst_case_fixed_j(n: int, j: int, t_values: Iterable[int]) -> float:
    """min over t of the fixed-j success probability.

    Demonstrates the ablation A-j: for any fixed j there are values of t
    where sin^2((2j+1) theta) is tiny, so no fixed iteration count gives
    a uniform constant success guarantee.
    """
    return min(fixed_j_success(t, n, j) for t in t_values)


def worst_case_random_j(n: int, m: int, t_values: Iterable[int]) -> float:
    """min over t of the BBHT average — the quantity the paper bounds by 1/4."""
    return min(random_j_success(t, n, m) for t in t_values)


@dataclass(frozen=True)
class SuccessRow:
    """One row of the E2 table."""

    t: int
    analytic: float
    fixed_best: float
    fixed_worst: float


def success_table(n: int, m: int, t_values: Iterable[int]) -> List[SuccessRow]:
    """Analytic success probabilities per t, with fixed-j best/worst context."""
    rows: List[SuccessRow] = []
    for t in t_values:
        per_j = [fixed_j_success(t, n, j) for j in range(m)]
        rows.append(
            SuccessRow(
                t=t,
                analytic=random_j_success(t, n, m),
                fixed_best=max(per_j),
                fixed_worst=min(per_j),
            )
        )
    return rows
