"""Register layout for procedure A3's state |i>|h>|l>.

The paper's A3 state lives on three registers: a ``2k``-qubit index
register holding i in {0, ..., 2^{2k} - 1}, and two one-qubit flags h
and l.  We lay them out as:

* qubits ``0 .. 2k-1``  — index register (qubit q = bit q of i),
* qubit ``2k``          — h,
* qubit ``2k + 1``      — l ("the last qubit" measured in step 5).

Compiled circuits may use additional clean ancilla qubits starting at
``2k + 2`` (see :mod:`repro.quantum.compile`); the layout records how
many so space accounting includes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuantumError


@dataclass(frozen=True)
class A3Registers:
    """Qubit indices of procedure A3's registers for a given k."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QuantumError("k must be >= 1")

    @property
    def index_qubits(self) -> int:
        """Width of the index register: 2k."""
        return 2 * self.k

    @property
    def string_length(self) -> int:
        """N = 2^{2k}, the length of the strings x and y."""
        return 1 << (2 * self.k)

    @property
    def h_qubit(self) -> int:
        return 2 * self.k

    @property
    def l_qubit(self) -> int:
        return 2 * self.k + 1

    @property
    def total_qubits(self) -> int:
        """Qubits of the algorithm-level state: 2k + 2."""
        return 2 * self.k + 2

    @property
    def index_mask(self) -> int:
        """Bitmask extracting the index register from a basis index."""
        return self.string_length - 1

    @property
    def h_bit(self) -> int:
        """Bit value of the h qubit inside a basis index."""
        return 1 << self.h_qubit

    @property
    def l_bit(self) -> int:
        return 1 << self.l_qubit

    @property
    def dimension(self) -> int:
        return 1 << self.total_qubits

    def ancilla_range(self, count: int) -> range:
        """Qubit labels for *count* clean ancillas placed after l."""
        start = self.total_qubits
        return range(start, start + count)
