"""State vectors and measurement statistics.

Convention: a state on n qubits is a contiguous ``complex128`` array of
length 2^n; basis index ``i`` assigns qubit ``q`` the bit
``(i >> q) & 1`` (qubit 0 is the least significant bit).  All
probability computations are exact functions of the amplitudes; sampling
is layered on top where experiments need empirical counts.

Batched states (:class:`BatchedStateVector`) stack B independent trials
as a ``(B, 2^n)`` array so one NumPy call advances every trial; the
operators in :mod:`repro.quantum.operators` accept the leading batch
axis transparently.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import QuantumError
from ..rng import ensure_rng

#: Tolerance for normalization checks (float64 round-off across many gates).
NORM_ATOL = 1e-9


@lru_cache(maxsize=None)
def basis_indices(size: int, xp=None):
    """``arange(size)`` cached per (dimension, array namespace).

    Index tables are rebuilt constantly on the hot paths (measurement
    statistics, operator construction); the cache makes them a lookup.
    The numpy table (the default) is read-only; *xp* (a NumPy-like
    namespace, see :mod:`repro.xp`) keeps one device-resident copy per
    dimension so chunk tiles and repeated operator builds never re-pay
    the host-to-device transfer.
    """
    if xp is None or xp is np:
        idx = np.arange(size)
        idx.setflags(write=False)
        return idx
    return xp.asarray(np.arange(size, dtype=np.int64))


@lru_cache(maxsize=None)
def bit_where(size: int, qubit: int, xp=None):
    """Boolean mask over basis indices where *qubit* is 1 (read-only).

    Like :func:`basis_indices`, cached per (size, qubit, namespace).
    """
    if xp is None or xp is np:
        mask = ((basis_indices(size) >> qubit) & 1) == 1
        mask.setflags(write=False)
        return mask
    return xp.asarray(np.asarray(bit_where(size, qubit)))


def zero_state(n_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state |0...0> on n qubits."""
    if n_qubits < 1:
        raise QuantumError("need at least one qubit")
    vec = np.zeros(1 << n_qubits, dtype=np.complex128)
    vec[0] = 1.0
    return vec


def basis_state(n_qubits: int, index: int) -> np.ndarray:
    """The computational basis state |index> on n qubits."""
    dim = 1 << n_qubits
    if not 0 <= index < dim:
        raise QuantumError(f"basis index {index} out of range for {n_qubits} qubits")
    vec = np.zeros(dim, dtype=np.complex128)
    vec[index] = 1.0
    return vec


class StateVector:
    """A normalized pure state with qubit-level measurement helpers.

    Thin, explicit wrapper over the raw array: heavy operators in
    :mod:`repro.quantum.operators` act on the array directly (views, no
    copies), while this class provides the checked public surface.
    """

    __slots__ = ("n_qubits", "amplitudes")

    def __init__(self, amplitudes: np.ndarray, *, check: bool = True) -> None:
        amplitudes = np.ascontiguousarray(amplitudes, dtype=np.complex128)
        n = int(np.log2(amplitudes.size))
        if (1 << n) != amplitudes.size:
            raise QuantumError(f"amplitude vector size {amplitudes.size} is not a power of 2")
        if check:
            norm = np.vdot(amplitudes, amplitudes).real
            if abs(norm - 1.0) > NORM_ATOL:
                raise QuantumError(f"state is not normalized (|psi|^2 = {norm})")
        self.n_qubits = n
        self.amplitudes = amplitudes

    @classmethod
    def zero(cls, n_qubits: int) -> "StateVector":
        return cls(zero_state(n_qubits), check=False)

    # -- measurement statistics (exact) -----------------------------------

    def probability_of_bit(self, qubit: int, value: int) -> float:
        """Exact probability that measuring *qubit* yields *value*."""
        if not 0 <= qubit < self.n_qubits:
            raise QuantumError(f"qubit {qubit} out of range")
        if value not in (0, 1):
            raise QuantumError("measurement value must be 0 or 1")
        ones = bit_where(self.amplitudes.size, qubit)
        mask = ones if value == 1 else ~ones
        return float(np.sum(np.abs(self.amplitudes[mask]) ** 2))

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 over the full computational basis."""
        return np.abs(self.amplitudes) ** 2

    def marginal(self, qubits: Iterable[int]) -> np.ndarray:
        """Joint distribution of the given qubits (in the given order)."""
        qubits = list(qubits)
        probs = self.probabilities()
        idx = basis_indices(probs.size)
        out = np.zeros(1 << len(qubits))
        sub = np.zeros_like(idx)
        for pos, q in enumerate(qubits):
            if not 0 <= q < self.n_qubits:
                raise QuantumError(f"qubit {q} out of range")
            sub |= ((idx >> q) & 1) << pos
        np.add.at(out, sub, probs)
        return out

    # -- sampling -----------------------------------------------------------

    def measure_qubit(
        self, qubit: int, rng=None
    ) -> Tuple[int, "StateVector"]:
        """Sample a measurement of one qubit; returns (outcome, collapsed state)."""
        gen = ensure_rng(rng)
        p1 = self.probability_of_bit(qubit, 1)
        outcome = 1 if gen.random() < p1 else 0
        ones = bit_where(self.amplitudes.size, qubit)
        keep = ones if outcome == 1 else ~ones
        collapsed = np.where(keep, self.amplitudes, 0.0)
        norm = np.linalg.norm(collapsed)
        if norm == 0:  # pragma: no cover - impossible given sampling above
            raise QuantumError("measurement collapsed to the zero vector")
        return outcome, StateVector(collapsed / norm, check=False)

    def sample_all(self, rng=None) -> int:
        """Sample a full computational-basis measurement; returns the index.

        The amplitudes are checked against :data:`NORM_ATOL` first: real
        normalization drift raises :class:`QuantumError` instead of being
        silently renormalized away (only float round-off within the
        tolerance is compensated).
        """
        gen = ensure_rng(rng)
        probs = self.probabilities()
        total = float(probs.sum())
        if abs(total - 1.0) > NORM_ATOL:
            raise QuantumError(
                f"state norm drifted beyond tolerance (sum|a|^2 = {total})"
            )
        probs = probs / total
        return int(gen.choice(probs.size, p=probs))

    # -- comparisons -----------------------------------------------------

    def fidelity(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if self.n_qubits != other.n_qubits:
            raise QuantumError("states have different qubit counts")
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def equals_up_to_global_phase(
        self, other: "StateVector", atol: float = 1e-8
    ) -> bool:
        """True when the states differ only by a global phase."""
        return self.fidelity(other) > 1.0 - atol

    def copy(self) -> "StateVector":
        return StateVector(self.amplitudes.copy(), check=False)


class BatchedStateVector:
    """B independent pure states stacked as a ``(B, 2^n)`` array.

    The batch axis is the vectorization unit of the execution engine's
    dense backend: one NumPy call advances all B trials.  Rows are
    independent states (no entanglement across the batch axis); the
    operators in :mod:`repro.quantum.operators` broadcast over it.
    """

    __slots__ = ("n_qubits", "batch", "amplitudes")

    def __init__(self, amplitudes: np.ndarray, *, check: bool = True) -> None:
        amplitudes = np.ascontiguousarray(amplitudes, dtype=np.complex128)
        if amplitudes.ndim != 2:
            raise QuantumError(
                f"batched state needs a (B, 2^n) array, got ndim={amplitudes.ndim}"
            )
        n = int(np.log2(amplitudes.shape[1]))
        if (1 << n) != amplitudes.shape[1]:
            raise QuantumError(
                f"amplitude row size {amplitudes.shape[1]} is not a power of 2"
            )
        if check:
            norms = np.einsum("bi,bi->b", amplitudes.conj(), amplitudes).real
            worst = float(np.max(np.abs(norms - 1.0))) if norms.size else 0.0
            if worst > NORM_ATOL:
                raise QuantumError(
                    f"batched state has a non-normalized row (max drift {worst})"
                )
        self.n_qubits = n
        self.batch = amplitudes.shape[0]
        self.amplitudes = amplitudes

    @classmethod
    def zero(cls, batch: int, n_qubits: int) -> "BatchedStateVector":
        """|0...0> replicated across the batch axis."""
        if batch < 1:
            raise QuantumError("batch size must be >= 1")
        amps = np.zeros((batch, 1 << n_qubits), dtype=np.complex128)
        amps[:, 0] = 1.0
        return cls(amps, check=False)

    @classmethod
    def broadcast(cls, state: StateVector, batch: int) -> "BatchedStateVector":
        """Tile one state into a batch of B identical rows."""
        if batch < 1:
            raise QuantumError("batch size must be >= 1")
        return cls(np.tile(state.amplitudes, (batch, 1)), check=False)

    def row(self, index: int) -> StateVector:
        """Trial *index* as a standalone :class:`StateVector`."""
        return StateVector(self.amplitudes[index].copy(), check=False)

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 per row: shape (B, 2^n)."""
        return np.abs(self.amplitudes) ** 2

    def probability_of_bit(self, qubit: int, value: int) -> np.ndarray:
        """Per-trial probability that measuring *qubit* yields *value*: (B,).

        Each row is reduced by its own 1-D sum over the gathered
        columns — bit-identical to :meth:`StateVector.probability_of_bit`
        row by row, where an ``axis=`` reduction is not (NumPy orders
        the additions differently; see the float-determinism contract
        in ``docs/ARCHITECTURE.md``).
        """
        if not 0 <= qubit < self.n_qubits:
            raise QuantumError(f"qubit {qubit} out of range")
        if value not in (0, 1):
            raise QuantumError("measurement value must be 0 or 1")
        ones = bit_where(self.amplitudes.shape[1], qubit)
        mask = ones if value == 1 else ~ones
        probs = np.abs(self.amplitudes[:, mask]) ** 2
        return np.array([float(np.sum(probs[i])) for i in range(probs.shape[0])])

    def norms(self) -> np.ndarray:
        """Per-trial squared norms (drift diagnostics): (B,)."""
        return np.einsum("bi,bi->b", self.amplitudes.conj(), self.amplitudes).real

    def copy(self) -> "BatchedStateVector":
        return BatchedStateVector(self.amplitudes.copy(), check=False)


def global_phase_aligned(u: np.ndarray, v: np.ndarray) -> Optional[complex]:
    """The phase e^{i a} with ``u ~ e^{i a} v``, or None if not proportional.

    Used by compiler tests to compare unitaries up to global phase.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        return None
    flat_u = u.ravel()
    flat_v = v.ravel()
    pivot = int(np.argmax(np.abs(flat_v)))
    if abs(flat_v[pivot]) < 1e-12:
        return None
    phase = flat_u[pivot] / flat_v[pivot]
    if abs(abs(phase) - 1.0) > 1e-8:
        return None
    if not np.allclose(flat_u, phase * flat_v, atol=1e-8):
        return None
    return complex(phase)
