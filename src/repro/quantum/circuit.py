"""Circuits over the gate set G = {H, T, CNOT} (Definition 2.3).

A circuit is a sequence of :class:`GateOp` items ``G_c^{[a,b]}``: gate
id ``c`` in {0, 1, 2} applied to qubits ``a`` and ``b`` (only ``a``
matters for the one-qubit gates; the paper's convention that ``a == b``
denotes the identity gate is honoured).  Circuits simulate exactly on
state vectors and can be serialized to / parsed from the Definition 2.3
output-tape format (:mod:`repro.quantum.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

import numpy as np

from ..errors import QuantumError
from .gates import H, T, apply_cnot, apply_single
from .state import zero_state

#: Gate ids of Definition 2.3.
GATE_H, GATE_T, GATE_CNOT = 0, 1, 2

GATE_NAMES = {GATE_H: "H", GATE_T: "T", GATE_CNOT: "CNOT"}


@dataclass(frozen=True)
class GateOp:
    """One operation ``G_c^{[a,b]}``.

    ``a == b`` encodes the identity (the paper's convention), whatever
    the gate id; for one-qubit gates with ``a != b``, ``b`` is ignored
    by the semantics but still serialized.
    """

    gate: int
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.gate not in (GATE_H, GATE_T, GATE_CNOT):
            raise QuantumError(f"gate id must be 0, 1 or 2, got {self.gate}")
        if self.a < 0 or self.b < 0:
            raise QuantumError("qubit labels must be non-negative")

    @property
    def is_identity(self) -> bool:
        return self.a == self.b

    def describe(self) -> str:
        if self.is_identity:
            return f"I[{self.a}]"
        if self.gate == GATE_CNOT:
            return f"CNOT[{self.a}->{self.b}]"
        return f"{GATE_NAMES[self.gate]}[{self.a}]"


class Circuit:
    """An ordered list of G-gates on ``n_qubits`` labelled qubits."""

    def __init__(self, n_qubits: int, ops: Optional[Iterable[GateOp]] = None) -> None:
        if n_qubits < 1:
            raise QuantumError("a circuit needs at least one qubit")
        self.n_qubits = n_qubits
        self.ops: List[GateOp] = []
        if ops is not None:
            for op in ops:
                self.append(op)

    # -- construction -----------------------------------------------------

    def append(self, op: GateOp) -> "Circuit":
        if op.a >= self.n_qubits or op.b >= self.n_qubits:
            raise QuantumError(
                f"gate {op.describe()} addresses a qubit beyond {self.n_qubits - 1}"
            )
        self.ops.append(op)
        return self

    def _partner(self, qubit: int) -> int:
        """A second label distinct from *qubit* (Definition 2.3 writes two
        labels per gate; a == b would denote the identity)."""
        if self.n_qubits < 2:
            raise QuantumError(
                "Definition 2.3's encoding needs >= 2 qubits to express a "
                "non-identity one-qubit gate (a == b means identity)"
            )
        return qubit + 1 if qubit + 1 < self.n_qubits else qubit - 1

    def h(self, qubit: int) -> "Circuit":
        return self.append(GateOp(GATE_H, qubit, self._partner(qubit)))

    def t(self, qubit: int) -> "Circuit":
        return self.append(GateOp(GATE_T, qubit, self._partner(qubit)))

    def t_power(self, qubit: int, power: int) -> "Circuit":
        """Append T^power (power taken mod 8; T^8 = identity up to nothing
        at all — it is exactly the identity matrix)."""
        for _ in range(power % 8):
            self.t(qubit)
        return self

    def t_dagger(self, qubit: int) -> "Circuit":
        return self.t_power(qubit, 7)

    def s(self, qubit: int) -> "Circuit":
        return self.t_power(qubit, 2)

    def z(self, qubit: int) -> "Circuit":
        return self.t_power(qubit, 4)

    def x(self, qubit: int) -> "Circuit":
        """X = H Z H = H T^4 H, exactly."""
        return self.h(qubit).t_power(qubit, 4).h(qubit)

    def cnot(self, control: int, target: int) -> "Circuit":
        if control == target:
            raise QuantumError("CNOT needs distinct qubits")
        return self.append(GateOp(GATE_CNOT, control, target))

    def cz(self, control: int, target: int) -> "Circuit":
        """CZ = (I x H) CNOT (I x H), exactly."""
        return self.h(target).cnot(control, target).h(target)

    def identity(self, qubit: int = 0) -> "Circuit":
        """The paper's explicit identity convention: a == b."""
        return self.append(GateOp(GATE_H, qubit, qubit))

    def extend(self, other: "Circuit") -> "Circuit":
        if other.n_qubits > self.n_qubits:
            raise QuantumError("cannot extend with a wider circuit")
        for op in other.ops:
            self.append(op)
        return self

    # -- simulation ----------------------------------------------------------

    def apply(self, vec: np.ndarray) -> np.ndarray:
        """Apply the circuit to a length-2^n amplitude vector."""
        if vec.size != (1 << self.n_qubits):
            raise QuantumError(
                f"state has {vec.size} amplitudes, circuit needs {1 << self.n_qubits}"
            )
        out = np.array(vec, dtype=np.complex128, copy=True)
        for op in self.ops:
            if op.is_identity:
                continue
            if op.gate == GATE_CNOT:
                out = apply_cnot(out, self.n_qubits, op.a, op.b)
            elif op.gate == GATE_H:
                out = apply_single(out, self.n_qubits, H, op.a)
            else:
                out = apply_single(out, self.n_qubits, T, op.a)
        return out

    def run_from_zero(self) -> np.ndarray:
        """Apply the circuit to |0...0> (the Definition 2.3 semantics)."""
        return self.apply(zero_state(self.n_qubits))

    def unitary(self) -> np.ndarray:
        """Dense 2^n x 2^n unitary (small n only; used by compiler tests)."""
        dim = 1 << self.n_qubits
        if dim > 1 << 12:
            raise QuantumError("unitary() is for small circuits (n <= 12)")
        out = np.zeros((dim, dim), dtype=np.complex128)
        for col in range(dim):
            basis = np.zeros(dim, dtype=np.complex128)
            basis[col] = 1.0
            out[:, col] = self.apply(basis)
        return out

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[GateOp]:
        return iter(self.ops)

    def gate_counts(self) -> dict[str, int]:
        counts = {"H": 0, "T": 0, "CNOT": 0, "I": 0}
        for op in self.ops:
            counts["I" if op.is_identity else GATE_NAMES[op.gate]] += 1
        return counts

    def qubits_touched(self) -> set[int]:
        """Distinct qubits addressed by non-identity gates (the space charge)."""
        touched: set[int] = set()
        for op in self.ops:
            if op.is_identity:
                continue
            touched.add(op.a)
            if op.gate == GATE_CNOT:
                touched.add(op.b)
        return touched
