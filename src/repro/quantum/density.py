"""Density matrices and noisy evolution of procedure A3.

The paper assumes ideal quantum memory; its own motivation ("one of the
main technological obstacles ... is the realization of quantum memory")
invites the obvious robustness question: how much decoherence can the
Theorem 3.4 machine tolerate?  This module provides the mixed-state
substrate to answer it exactly:

* :class:`DensityMatrix` — exact density-operator simulation, with
  unitary application *reusing the vectorized pure-state operators*
  (a unitary given as a vector function f acts on rho by applying f to
  the columns and conjugate-applying to the rows);
* depolarizing noise ``rho -> (1 - lam) rho + lam I/d``;
* :class:`NoisyGroverA3` — A3's evolution with a depolarizing hit after
  every Grover iteration (the register sits in memory between passes of
  the stream, which is exactly when it decoheres).

The headline finding (experiment E13): noise converts the one-sided
guarantee into two-sided error — a *member* is now "detected" with
probability (1 - (1-lam)^j)/2 > 0 — so the accept/reject probabilities
must stay separated for majority voting to work; the measured gap
closes as lam grows, giving the machine's noise budget.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import QuantumError
from .grover import GroverA3
from .registers import A3Registers
from .state import bit_where

VectorFn = Callable[[np.ndarray], np.ndarray]


class DensityMatrix:
    """An exact density operator on n qubits."""

    __slots__ = ("n_qubits", "rho")

    def __init__(self, rho: np.ndarray, *, check: bool = True) -> None:
        rho = np.ascontiguousarray(rho, dtype=np.complex128)
        if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
            raise QuantumError("density matrix must be square")
        n = int(np.log2(rho.shape[0]))
        if (1 << n) != rho.shape[0]:
            raise QuantumError("dimension must be a power of 2")
        if check:
            if abs(np.trace(rho).real - 1.0) > 1e-8 or abs(np.trace(rho).imag) > 1e-8:
                raise QuantumError(f"trace is {np.trace(rho)}, not 1")
            if not np.allclose(rho, rho.conj().T, atol=1e-8):
                raise QuantumError("density matrix is not Hermitian")
        self.n_qubits = n
        self.rho = rho

    @classmethod
    def from_state_vector(cls, vec: np.ndarray) -> "DensityMatrix":
        vec = np.asarray(vec, dtype=np.complex128)
        return cls(np.outer(vec, vec.conj()), check=False)

    @classmethod
    def maximally_mixed(cls, n_qubits: int) -> "DensityMatrix":
        d = 1 << n_qubits
        return cls(np.eye(d, dtype=np.complex128) / d, check=False)

    # -- evolution ---------------------------------------------------------

    def apply_unitary_fn(self, fn: VectorFn) -> "DensityMatrix":
        """rho -> U rho U^dagger where U is given as its action on vectors.

        Applies fn column-wise (U rho), then conjugate-applies it to the
        rows; works for any of the vectorized operators in
        :mod:`repro.quantum.operators` without materializing U.
        """
        cols = np.stack(
            [fn(np.ascontiguousarray(self.rho[:, c])) for c in range(self.rho.shape[1])],
            axis=1,
        )
        rows = np.stack(
            [
                fn(np.ascontiguousarray(cols[r, :].conj())).conj()
                for r in range(cols.shape[0])
            ],
            axis=0,
        )
        return DensityMatrix(rows, check=False)

    def depolarize(self, lam: float) -> "DensityMatrix":
        """Global depolarizing channel: (1 - lam) rho + lam I/d."""
        if not 0.0 <= lam <= 1.0:
            raise QuantumError("noise rate must lie in [0, 1]")
        d = self.rho.shape[0]
        mixed = np.eye(d, dtype=np.complex128) / d
        return DensityMatrix((1.0 - lam) * self.rho + lam * mixed, check=False)

    # -- readout ---------------------------------------------------------------

    def probability_of_bit(self, qubit: int, value: int) -> float:
        if not 0 <= qubit < self.n_qubits:
            raise QuantumError(f"qubit {qubit} out of range")
        if value not in (0, 1):
            raise QuantumError("measurement value must be 0 or 1")
        ones = bit_where(self.rho.shape[0], qubit)
        mask = ones if value == 1 else ~ones
        return float(np.sum(self.rho.diagonal().real[mask]))

    def purity(self) -> float:
        """Tr(rho^2): 1 for pure states, 1/d for the maximally mixed."""
        return float(np.sum(np.abs(self.rho) ** 2))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """<psi| rho |psi>."""
        vec = np.asarray(vec, dtype=np.complex128)
        return float((vec.conj() @ (self.rho @ vec)).real)

    def trace_distance(self, other: "DensityMatrix") -> float:
        """(1/2) ||rho - sigma||_1 via eigenvalues of the difference."""
        diff = self.rho - other.rho
        eigs = np.linalg.eigvalsh(diff)
        return float(0.5 * np.sum(np.abs(eigs)))


class NoisyGroverA3:
    """A3's state evolution under per-iteration depolarizing noise.

    Parameters
    ----------
    k, x, y:
        As in :class:`~repro.quantum.grover.GroverA3`.
    noise:
        Depolarizing rate applied to the whole register after each
        Grover iteration and once more before the final measurement
        (the idle periods between stream passes).
    """

    def __init__(self, k: int, x: str, y: str, noise: float) -> None:
        self.clean = GroverA3(k, x, y)
        self.regs: A3Registers = self.clean.regs
        self.noise = noise

    def state_after(self, iterations: int) -> DensityMatrix:
        from .operators import initial_phi

        rho = DensityMatrix.from_state_vector(initial_phi(self.regs))
        for _ in range(iterations):
            rho = rho.apply_unitary_fn(lambda v: self.clean.iterate(v))
            rho = rho.depolarize(self.noise)
        rho = rho.apply_unitary_fn(lambda v: self.clean._ry.apply(self.clean._vx.apply(v)))
        rho = rho.depolarize(self.noise)
        return rho

    def detection_probability(self, iterations: int) -> float:
        """Exact Pr[measuring l gives 1] under noise."""
        rho = self.state_after(iterations)
        return rho.probability_of_bit(self.regs.l_qubit, 1)

    def average_detection_probability(self, m: Optional[int] = None) -> float:
        m = (1 << self.clean.regs.k) if m is None else m
        return float(
            np.mean([self.detection_probability(j) for j in range(m)])
        )


def noise_profile(k: int, x: str, y: str, noise: float) -> dict:
    """The E13 quantities for one (x, y) at one noise rate."""
    noisy = NoisyGroverA3(k, x, y, noise)
    return {
        "t": noisy.clean.t,
        "noise": noise,
        "detection": noisy.average_detection_probability(),
        "clean_detection": noisy.clean.average_detection_probability(),
    }
