"""The universal gate set G = {H, T, CNOT} and vectorized application.

The paper fixes ``G0 = H`` (Hadamard), ``G1 = T`` (the pi/8 gate) and
``G2 = CNOT``.  Derived Clifford+T gates used by the compiler (X, Z, S,
T-dagger, ...) are provided both as exact matrices and as exact G-gate
expansions (see :mod:`repro.quantum.compile`).

Application functions reshape the length-2^n amplitude vector into an
n-axis tensor and contract the gate against the target axes — the
standard vectorized simulation kernel (no Python loop over amplitudes).
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantumError
from .state import basis_indices, bit_where

_SQRT2_INV = 1.0 / np.sqrt(2.0)

#: Hadamard gate (G0).
H = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=np.complex128) * _SQRT2_INV

#: T gate, the pi/8 gate (G1): diag(1, e^{i pi/4}).
T = np.array([[1.0, 0.0], [0.0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)

#: T^7 = T-dagger up to global phase; exactly T's inverse.
T_DAGGER = np.array([[1.0, 0.0], [0.0, np.exp(-1j * np.pi / 4)]], dtype=np.complex128)

#: Pauli gates and S (all exact words in H and T; see compile module).
X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128)
Y = np.array([[0.0, -1j], [1j, 0.0]], dtype=np.complex128)
Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=np.complex128)
S = np.array([[1.0, 0.0], [0.0, 1j]], dtype=np.complex128)

#: CNOT (G2) in the basis |control target> with control the HIGH bit:
#: |00>->|00>, |01>->|01>, |10>->|11>, |11>->|10>.
CNOT_MATRIX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=np.complex128,
)

I2 = np.eye(2, dtype=np.complex128)


def _check_qubit(n_qubits: int, qubit: int) -> None:
    if not 0 <= qubit < n_qubits:
        raise QuantumError(f"qubit {qubit} out of range for {n_qubits} qubits")


def apply_single(vec: np.ndarray, n_qubits: int, gate: np.ndarray, qubit: int) -> np.ndarray:
    """Apply a 2x2 gate to one qubit of a length-2^n state vector.

    Returns a new contiguous array (the reshape/moveaxis pipeline is
    views; the single matmul produces the only copy).
    """
    _check_qubit(n_qubits, qubit)
    if gate.shape != (2, 2):
        raise QuantumError(f"expected a 2x2 gate, got shape {gate.shape}")
    tensor = vec.reshape((2,) * n_qubits)
    axis = n_qubits - 1 - qubit  # axis 0 is the most significant bit
    moved = np.moveaxis(tensor, axis, 0)
    shape = moved.shape
    out = (gate @ moved.reshape(2, -1)).reshape(shape)
    return np.ascontiguousarray(np.moveaxis(out, 0, axis)).reshape(vec.size)


def apply_two(
    vec: np.ndarray,
    n_qubits: int,
    gate: np.ndarray,
    qubit_a: int,
    qubit_b: int,
) -> np.ndarray:
    """Apply a 4x4 gate to qubits (a, b); the gate basis is |a b> with a high.

    For CNOT, pass ``qubit_a`` = control, ``qubit_b`` = target.
    """
    _check_qubit(n_qubits, qubit_a)
    _check_qubit(n_qubits, qubit_b)
    if qubit_a == qubit_b:
        raise QuantumError("two-qubit gate needs distinct qubits")
    if gate.shape != (4, 4):
        raise QuantumError(f"expected a 4x4 gate, got shape {gate.shape}")
    tensor = vec.reshape((2,) * n_qubits)
    ax_a = n_qubits - 1 - qubit_a
    ax_b = n_qubits - 1 - qubit_b
    moved = np.moveaxis(tensor, (ax_a, ax_b), (0, 1))
    shape = moved.shape
    out = (gate @ moved.reshape(4, -1)).reshape(shape)
    return np.ascontiguousarray(np.moveaxis(out, (0, 1), (ax_a, ax_b))).reshape(vec.size)


def apply_cnot(vec: np.ndarray, n_qubits: int, control: int, target: int) -> np.ndarray:
    """CNOT as an index permutation (faster than the dense 4x4 route)."""
    _check_qubit(n_qubits, control)
    _check_qubit(n_qubits, target)
    if control == target:
        raise QuantumError("CNOT needs distinct control and target")
    idx = basis_indices(vec.size)
    flip = bit_where(vec.size, control)
    perm = np.where(flip, idx ^ (1 << target), idx)
    return vec[perm]


def controlled(gate: np.ndarray) -> np.ndarray:
    """The 4x4 controlled version of a 2x2 gate (control = high bit)."""
    if gate.shape != (2, 2):
        raise QuantumError("controlled() expects a 2x2 gate")
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = gate
    return out


def kron_all(*gates: np.ndarray) -> np.ndarray:
    """Kronecker product of the given matrices, left to right."""
    out = np.array([[1.0 + 0j]])
    for g in gates:
        out = np.kron(out, g)
    return out


def walsh_hadamard_in_place(block) -> None:
    """Fast Walsh-Hadamard transform along axis -1, normalized by 1/sqrt(2)
    per stage — i.e. H^{(x)tensor m} applied to each row of ``block`` whose
    last axis has length 2^m.  Runs in O(N log N), fully vectorized.

    *block* may live in any array namespace (numpy, cupy, a torch
    tensor): only reshape views, slice assignment and elementwise
    arithmetic are used — the butterfly materializes its two summand
    temporaries instead of calling a namespace-specific ``copy``, with
    float-identical results.
    """
    n = block.shape[-1]
    if n & (n - 1):
        raise QuantumError("Walsh-Hadamard needs a power-of-two axis length")
    h = 1
    while h < n:
        shaped = block.reshape(tuple(block.shape[:-1]) + (n // (2 * h), 2, h))
        a = shaped[..., 0, :] + shaped[..., 1, :]
        b = shaped[..., 0, :] - shaped[..., 1, :]
        shaped[..., 0, :] = a
        shaped[..., 1, :] = b
        h *= 2
    block *= 1.0 / np.sqrt(n)
