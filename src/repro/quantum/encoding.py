"""The Definition 2.3 output-tape codec.

A quantum online machine's output tape must read

    a_1 # b_1 # c_1 # a_2 # b_2 # c_2 # ... # a_r # b_r # c_r

with ``a_i, b_i`` qubit labels in {0, ..., s-1} and ``c_i`` a gate id in
{0, 1, 2}.  The tape alphabet is ternary, so the integers are written in
binary (minimal form, '0' for zero).  This module converts circuits to
and from that exact string format, validating ranges on decode.
"""

from __future__ import annotations

from ..alphabet import HASH, validate_word
from ..errors import EncodingError
from .circuit import Circuit, GateOp


def _int_to_binary(value: int) -> str:
    if value < 0:
        raise EncodingError(f"cannot encode negative integer {value}")
    return format(value, "b")


def _binary_to_int(field: str) -> int:
    if not field or any(ch not in "01" for ch in field):
        raise EncodingError(f"malformed binary field {field!r}")
    return int(field, 2)


def encode_circuit(circuit: Circuit) -> str:
    """Serialize a circuit to the Definition 2.3 tape string.

    An empty circuit encodes as a single identity triple (Definition 2.3
    requires r >= 1), using the a == b convention.
    """
    ops = circuit.ops if circuit.ops else [GateOp(0, 0, 0)]
    fields: list[str] = []
    for op in ops:
        fields.extend(
            (_int_to_binary(op.a), _int_to_binary(op.b), _int_to_binary(op.gate))
        )
    return HASH.join(fields)


def decode_circuit(tape: str, n_qubits: int) -> Circuit:
    """Parse a Definition 2.3 tape string into a circuit on *n_qubits*.

    Raises
    ------
    EncodingError
        On empty tapes, non-triple field counts, out-of-range qubit
        labels or gate ids — everything condition 2 of Definition 2.3
        forbids.
    """
    validate_word(tape)
    if tape == "":
        raise EncodingError("Definition 2.3 requires at least one gate triple")
    fields = tape.split(HASH)
    if len(fields) % 3 != 0:
        raise EncodingError(
            f"tape has {len(fields)} fields, not a multiple of 3"
        )
    circuit = Circuit(n_qubits)
    for i in range(0, len(fields), 3):
        a = _binary_to_int(fields[i])
        b = _binary_to_int(fields[i + 1])
        c = _binary_to_int(fields[i + 2])
        if c not in (0, 1, 2):
            raise EncodingError(f"gate id {c} out of range at triple {i // 3}")
        if a >= n_qubits or b >= n_qubits:
            raise EncodingError(
                f"qubit label out of range at triple {i // 3}: ({a}, {b}) "
                f"with s = {n_qubits}"
            )
        circuit.append(GateOp(c, a, b))
    return circuit


def tape_length(circuit: Circuit) -> int:
    """Length in tape symbols of the encoded circuit (for the 2^s step bound)."""
    return len(encode_circuit(circuit))
