"""Hierarchical spans: perf_counter-timed sections with a parent tree.

``with span("engine.backend.count", backend="batched"):`` marks one
timed section.  How much that costs — and what it records — is decided
by the trace mode, read from the ``REPRO_TRACE`` environment variable
(or a programmatic override, see :func:`set_trace_mode`):

* ``off`` (the default) — the span is a shared no-op object: one
  counter increment (``span.calls{name=...}``), **no allocation, no
  clock reads, no recording**.  This is the bounded-overhead guarantee
  tested in ``tests/obs``.
* ``summary`` — spans are timed and fold into the registry
  (``span.seconds{name=...}`` histograms); no per-event storage, so
  memory stays O(distinct span names).
* ``full`` — additionally, every finished span is appended to the
  process :class:`SpanRecorder` as a parent-linked event, exportable
  as JSONL (``repro sample --trace FILE`` and friends).  The recorder
  is bounded (:data:`MAX_TRACE_SPANS`); overflow increments a drop
  counter instead of growing without bound.

Parent links use a :mod:`contextvars` variable, so the tree is correct
across threads and asyncio tasks: a span opened inside a service
handler coroutine parents the spans of the engine call it awaits, and
concurrent requests never see each other's frames.

Timing uses :func:`repro.obs.clock.perf_counter` exclusively
(monotonic; wallclock-hygiene compliant).  The only wall-clock value in
a trace is the export timestamp in the JSONL header line, read through
the sanctioned :mod:`repro.obs.clock`.
"""

from __future__ import annotations

import json
import os
import threading
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Union

from . import clock
from .metrics import get_registry

#: Environment knob; one of :data:`TRACE_MODES`.
TRACE_ENV = "REPRO_TRACE"

#: Recognized trace modes, cheapest first.
TRACE_MODES = ("off", "summary", "full")

#: Recorder capacity: spans beyond this are counted, not stored, so a
#: long-running traced service cannot grow without bound.
MAX_TRACE_SPANS = 100_000

_MODE_OVERRIDE: Optional[str] = None


def trace_mode() -> str:
    """The active mode: programmatic override, else ``REPRO_TRACE``, else off.

    Unrecognized environment values fall back to ``off`` — a typo in a
    deployment manifest must never make tracing *more* expensive.
    """
    if _MODE_OVERRIDE is not None:
        return _MODE_OVERRIDE
    mode = os.environ.get(TRACE_ENV, "off").strip().lower()
    return mode if mode in TRACE_MODES else "off"


def set_trace_mode(mode: Optional[str]) -> None:
    """Override the trace mode in-process (``None`` restores the env)."""
    global _MODE_OVERRIDE
    if mode is not None and mode not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {mode!r}; expected one of {', '.join(TRACE_MODES)}"
        )
    _MODE_OVERRIDE = mode


class SpanRecorder:
    """Bounded, thread-safe store of finished span events (full mode)."""

    def __init__(self, limit: int = MAX_TRACE_SPANS) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._next_id = 0
        self.limit = limit
        self.dropped = 0
        #: perf_counter epoch event ``start_s`` offsets are relative to.
        self.origin = clock.perf_counter()

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def record(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) < self.limit:
                self._events.append(event)
                return
            self.dropped += 1
        get_registry().counter("obs.spans.dropped").inc()

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every stored event (oldest first)."""
        with self._lock:
            events, self._events = self._events, []
            self.dropped = 0
            return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_RECORDER = SpanRecorder()


def get_recorder() -> SpanRecorder:
    """The process-global recorder full-mode spans append to."""
    return _RECORDER


#: The innermost open span's id in this thread/task (full mode only).
_CURRENT: ContextVar[Optional[int]] = ContextVar("repro_obs_current_span", default=None)


class _NullSpan:
    """The off-mode span: one shared instance, no state, no timing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed section (summary/full modes); use via :func:`span`."""

    __slots__ = ("name", "attrs", "mode", "span_id", "parent_id", "duration_s",
                 "_start", "_token")

    def __init__(self, name: str, mode: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.mode = mode
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.duration_s: Optional[float] = None
        self._token = None

    def __enter__(self) -> "Span":
        if self.mode == "full":
            self.span_id = _RECORDER.next_id()
            self.parent_id = _CURRENT.get()
            self._token = _CURRENT.set(self.span_id)
        self._start = clock.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.duration_s = clock.perf_counter() - self._start
        registry = get_registry()
        registry.counter("span.calls", name=self.name).inc()
        registry.histogram("span.seconds", name=self.name).observe(self.duration_s)
        if self.mode == "full":
            if self._token is not None:
                _CURRENT.reset(self._token)
            _RECORDER.record({
                "kind": "span",
                "id": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "start_s": round(self._start - _RECORDER.origin, 9),
                "duration_s": round(self.duration_s, 9),
                "attrs": self.attrs,
            })
        return False


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """A context manager timing one named section of work.

    *name* must be a static string (the ``telemetry-discipline`` lint
    rule enforces this); varying detail goes into ``**attrs``, which
    full-mode traces carry per event.  The returned object exposes
    ``duration_s`` after exit in summary/full modes.
    """
    mode = trace_mode()
    if mode == "off":
        get_registry().counter("span.calls", name=name).inc()
        return _NULL_SPAN
    return Span(name, mode, attrs)


class TraceSession:
    """Capture one operation's span tree and write it as JSONL.

    Forces ``full`` mode for its dynamic extent, drains the recorder on
    entry (the trace starts clean) and on exit (the trace owns exactly
    the spans that finished inside it), then restores whatever mode was
    configured before.  The CLI's ``--trace FILE`` wraps each command
    handler in one of these.
    """

    def __init__(self, mode: str = "full") -> None:
        if mode not in TRACE_MODES:
            raise ValueError(f"unknown trace mode {mode!r}")
        self.mode = mode
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._previous: Optional[str] = None

    def __enter__(self) -> "TraceSession":
        self._previous = _MODE_OVERRIDE
        set_trace_mode(self.mode)
        _RECORDER.drain()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.dropped = _RECORDER.dropped
        self.events = _RECORDER.drain()
        set_trace_mode(self._previous)
        return False

    @property
    def span_count(self) -> int:
        return len(self.events)

    def write_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write header + one line per span; returns the span count.

        Line 1 is the trace header (``kind: "trace"``, schema version,
        mode, span/drop counts, export timestamp); every further line
        is one span event with ``id``/``parent`` links forming the
        tree.  See ``docs/OBSERVABILITY.md`` for the field catalog.
        """
        header = {
            "v": 1,
            "kind": "trace",
            "mode": self.mode,
            "spans": len(self.events),
            "dropped": self.dropped,
            "exported_unix": round(clock.wall_time(), 3),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        return len(self.events)


def trace_session(mode: str = "full") -> TraceSession:
    """A :class:`TraceSession` (spelled as a function for symmetry)."""
    return TraceSession(mode)
