"""``repro.obs`` — the telemetry layer: metrics, spans, sanctioned clock.

Zero-dependency observability for every layer of the stack:

* :mod:`repro.obs.metrics` — the process-global
  :class:`MetricsRegistry` of named counters, gauges and fixed-bucket
  histograms, exported as a versioned JSON snapshot (the service's
  ``metrics`` op and ``repro metrics --json`` share this schema);
* :mod:`repro.obs.spans` — hierarchical ``span(name, **attrs)``
  context managers timed with ``perf_counter``, gated by
  ``REPRO_TRACE=off|summary|full`` and exportable as a JSONL span tree
  (``repro sample/lab run/query --trace FILE``);
* :mod:`repro.obs.clock` — the single module allowed to read the wall
  clock, for export timestamps only (``wallclock-hygiene`` sanctions
  exactly this path).

The cardinal rule, enforced by tests: **telemetry never changes
counts**.  Nothing in this package consults randomness or feeds values
back into execution, so instrumented runs are byte-identical to
uninstrumented ones on every backend.

See ``docs/OBSERVABILITY.md`` for the metric catalog, span tree schema
and snapshot schema.
"""

from __future__ import annotations

from . import clock  # noqa: F401  — re-exported as a namespace
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    instrument_key,
)
from .spans import (
    MAX_TRACE_SPANS,
    TRACE_ENV,
    TRACE_MODES,
    Span,
    SpanRecorder,
    TraceSession,
    get_recorder,
    set_trace_mode,
    span,
    trace_mode,
    trace_session,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_BUCKETS",
    "MAX_TRACE_SPANS",
    "SNAPSHOT_VERSION",
    "TRACE_ENV",
    "TRACE_MODES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TraceSession",
    "clock",
    "get_recorder",
    "get_registry",
    "instrument_key",
    "set_trace_mode",
    "span",
    "trace_mode",
    "trace_session",
]
