"""The sanctioned clock: every timestamp the library exports reads here.

The reproduction's headline contract is *same seed => byte-identical
counts*, and the ``wallclock-hygiene`` lint rule enforces its corollary:
library code must never read the wall clock, because a wall-clock value
feeding a seed, a cache key, or a count breaks the contract in a way no
fixed-seed test can catch.  Telemetry still legitimately needs two
clocks:

* :func:`perf_counter` — the monotonic duration clock.  Spans and
  latency histograms are timed with it exclusively; it cannot encode a
  date, so it cannot leak one into results.
* :func:`wall_time` — the one wall-clock reading the library is allowed.
  It exists solely to stamp *exported* telemetry documents (metrics
  snapshots, trace headers) so a fleet operator can line them up across
  hosts.  Its value must never flow back into seeds, keys, or counts.

This module is the single entry on ``wallclock-hygiene``'s sanction
list (:data:`repro.lint.rules.wallclock.DEFAULT_SANCTIONED`): a
``time.time()`` call anywhere else in ``src/repro`` still fails
``repro lint src``.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Current Unix time in seconds — for export timestamps *only*."""
    return time.time()


def perf_counter() -> float:
    """The monotonic duration clock (alias of ``time.perf_counter``)."""
    return time.perf_counter()
