"""The metrics registry: named counters, gauges and fixed-bucket histograms.

One process-global :class:`MetricsRegistry` (:func:`get_registry`)
holds every instrument the library emits.  Instruments are identified
by a **static name** plus optional ``key=value`` labels — the
``telemetry-discipline`` lint rule keeps the names static (no
f-strings), so the cardinality of the registry is bounded by the label
*values* that actually occur (backend names, recognizer names, op
names: all small finite sets).

Design constraints, in order:

* **zero dependencies** — stdlib only, so the engine's hot path can
  import it unconditionally;
* **thread-safe increments** — engine runs happen on service worker
  threads and under process pools; every instrument carries its own
  lock and the registry's instrument map has another;
* **count-invariant** — nothing here consults randomness or feeds back
  into execution; instrumented runs are byte-identical to
  uninstrumented ones (hypothesis-tested in ``tests/obs``);
* **versioned export** — :meth:`MetricsRegistry.snapshot` is a plain
  JSON document with an explicit ``version`` field, the shared schema
  of the service's ``metrics`` op and ``repro metrics --json``
  (documented in ``docs/OBSERVABILITY.md``).

Histograms use fixed bucket bounds (default: a geometric latency
ladder from 1 microsecond to 2 minutes), so merging snapshots across
hosts is a per-bucket sum.  ``p50``/``p95`` are interpolated within
the bucket containing the rank — exact enough for dashboards, and the
exact ``sum``/``count`` pair is always exported alongside for exact
means (the bench harness derives cost-per-trial from those).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from . import clock

#: Schema version of :meth:`MetricsRegistry.snapshot` documents.
SNAPSHOT_VERSION = 1

#: Default histogram bounds: a 1-2.5-5 geometric ladder over seconds,
#: from clock resolution (1 us) to "a run you should have sharded"
#: (120 s).  Observations above the last bound land in a +inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0,
)

#: Bounds for small-integer distributions (coalescing depth, shard
#: counts): powers of two up to a fleet-sized fan-in.
COUNT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def instrument_key(name: str, labels: Mapping[str, Any]) -> str:
    """The flat snapshot key: ``name{k=v,...}`` with keys sorted.

    >>> instrument_key("engine.backend.seconds", {"recognizer": "quantum", "backend": "batched"})
    'engine.backend.seconds{backend=batched,recognizer=quantum}'
    >>> instrument_key("service.inflight", {})
    'service.inflight'
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for that")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (in-flight requests, pool sizes)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError("gauge values must be finite (snapshots are JSON)")
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with exact ``sum``/``count``.

    Bounds are upper-inclusive; one implicit overflow bucket catches
    everything above the last bound.  ``observe`` is O(log buckets).
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the overflow bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("histogram observations must be finite")
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        """Exact mean of every observation; ``None`` when empty."""
        return self._sum / self._count if self._count else None

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile ``q`` in [0, 1]; ``None`` if empty.

        Linear interpolation inside the bucket holding the rank; ranks
        in the overflow bucket report the last finite bound (the
        histogram cannot know how far above it they landed).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return None
        rank = q * total
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = 0.0 if index == 0 else self.bounds[index - 1]
            if index >= len(self.bounds):
                return self.bounds[-1]
            upper = self.bounds[index]
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            cumulative += bucket_count
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, Any]:
        """The snapshot form: bounds/counts plus derived p50/p95."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            running_sum = self._sum
        return {
            "count": total,
            "sum": round(running_sum, 9),
            "buckets": [
                [bound, count] for bound, count in zip(self.bounds, counts)
            ] + [["inf", counts[-1]]],
            "p50": _round_opt(self.percentile(0.50)),
            "p95": _round_opt(self.percentile(0.95)),
        }


def _round_opt(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 9)


class MetricsRegistry:
    """Process-global instrument map with a versioned JSON snapshot.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call with a (name, labels) pair creates the instrument, later calls
    return the same object — so call sites just call them inline on the
    hot path.  A histogram's ``buckets`` argument only applies at
    creation; later callers share whatever bounds the first chose.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, /, **labels: Any) -> Counter:
        key = instrument_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        key = instrument_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        /,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = instrument_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
        return instrument

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{key: value}`` for every counter whose key starts with *prefix*."""
        with self._lock:
            items = list(self._counters.items())
        return {key: c.value for key, c in items if key.startswith(prefix)}

    def snapshot(self) -> Dict[str, Any]:
        """The versioned export document (JSON-ready, finite floats only).

        ``exported_unix`` is the one wall-clock field, read through the
        sanctioned :mod:`repro.obs.clock` — it stamps the document for
        cross-host alignment and never feeds back into execution.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "version": SNAPSHOT_VERSION,
            "exported_unix": round(clock.wall_time(), 3),
            "counters": {key: c.value for key, c in sorted(counters)},
            "gauges": {key: g.value for key, g in sorted(gauges)},
            "histograms": {key: h.to_dict() for key, h in sorted(histograms)},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and bench runs start clean)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every layer instruments into."""
    return _GLOBAL_REGISTRY
