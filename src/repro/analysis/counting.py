"""Fact 2.2 arithmetic and the bits <-> cells correspondence.

The streaming layer measures space in *register bits*; Definition 2.1
measures it in *work-tape cells* over the ternary alphabet.  The
correspondence is the standard one:

* b register bits fit in ``ceil(b / log2 3)`` ternary cells (pack bits
  into cells), so a register machine with b bits is an OPTM with
  O(b) cells and a constant-factor-larger state set;
* s ternary cells hold at most ``s * log2 3`` bits of information, so
  the conversion is tight up to the constant log2(3) ~ 1.585.

:func:`check_fact_2_2` verifies the Fact 2.2 bound against exhaustive
configuration enumeration of real machines (used in tests and E8).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..machines.configuration import (
    fact_2_2_bound,
    space_needed_for_configurations,
)
from ..machines.distributions import reachable_configurations
from ..machines.optm import OPTM

LOG2_3 = math.log2(3.0)


def registers_to_cells(bits: int) -> int:
    """Ternary work-tape cells needed to store *bits* register bits."""
    if bits < 0:
        raise ValueError("bits must be non-negative")
    return math.ceil(bits / LOG2_3)


def cells_to_registers(cells: int) -> int:
    """Register bits representable in *cells* ternary cells (floor)."""
    if cells < 0:
        raise ValueError("cells must be non-negative")
    return math.floor(cells * LOG2_3)


def check_fact_2_2(machine: OPTM, words: Iterable[str], max_steps: int = 10_000) -> dict:
    """Compare the Fact 2.2 bound with exhaustively counted configurations.

    Returns the observed configuration count (union over the given
    words), the worst-case cells used, and the bound evaluated at those
    parameters; ``ok`` is True when observed <= bound, which Fact 2.2
    guarantees.
    """
    words = list(words)
    if not words:
        raise ValueError("need at least one word")
    seen = set()
    cells = 1
    n = 1
    for word in words:
        configs = reachable_configurations(machine, word, max_steps=max_steps)
        seen |= configs
        cells = max(cells, max(c.cells_used() for c in configs))
        n = max(n, len(word))
    bound = fact_2_2_bound(
        n=max(n, 1) + 1,  # count the past-the-end head position too
        s=cells,
        sigma=machine.work_alphabet_size(),
        q=machine.state_count(),
    )
    return {
        "observed_configurations": len(seen),
        "cells_used": cells,
        "input_length": n,
        "sigma": machine.work_alphabet_size(),
        "states": machine.state_count(),
        "bound": bound,
        "ok": len(seen) <= bound,
    }
