"""Checking measured curves against the paper's asymptotic claims.

An asymptotic statement cannot be verified at finitely many points, but
two useful finite checks exist and the experiments use both:

* **envelope fits** — find the least constant c with
  ``measured(n) <= c * shape(n)`` over the measured range; if the
  implied constant is stable as n grows, the claimed shape is
  consistent (:func:`fit_log_curve`, :func:`fit_power_curve`,
  :func:`is_bounded_by`);
* **growth ratios** — for an exponential separation, the ratio
  classical/quantum must itself grow geometrically in k
  (:func:`growth_ratio`).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence


def is_bounded_by(
    xs: Sequence[float], ys: Sequence[float], shape: Callable[[float], float]
) -> float:
    """The least c with ``y <= c * shape(x)`` at every measured point.

    A *finite* c always exists when shape is positive on the data; the
    caller judges stability (experiments assert the constant computed
    on the first half of the range also covers the second half, i.e.
    the curve is not secretly growing faster than the shape).
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    c = 0.0
    for x, y in zip(xs, ys):
        s = shape(x)
        if s <= 0:
            raise ValueError(f"shape must be positive on the data (shape({x}) = {s})")
        c = max(c, y / s)
    return c


def envelope_is_stable(
    xs: Sequence[float],
    ys: Sequence[float],
    shape: Callable[[float], float],
    slack: float = 1.25,
) -> bool:
    """True when the envelope constant fitted on the first half of the
    data, inflated by *slack*, still covers the second half.

    This is the finite-data proxy for "ys = O(shape(xs))": a curve that
    actually grows faster than the shape makes the constant drift up.
    """
    half = max(2, len(xs) // 2)
    c_head = is_bounded_by(xs[:half], ys[:half], shape)
    return all(y <= slack * c_head * shape(x) for x, y in zip(xs[half:], ys[half:]))


def fit_log_curve(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Envelope constant for y <= c * log2(x)."""
    return is_bounded_by(xs, ys, lambda x: math.log2(max(x, 2.0)))


def fit_power_curve(
    xs: Sequence[float], ys: Sequence[float], exponent: float
) -> float:
    """Envelope constant for y <= c * x^exponent."""
    return is_bounded_by(xs, ys, lambda x: x**exponent)


#: Two-sided 95% normal quantile — the default *z* for every Wilson
#: helper below (kept as one constant so the interval, the half-width
#: and the inversion all agree on what "95%" means).
Z95 = 1.959963984540054


def binomial_stderr(successes: int, trials: int) -> float:
    """Standard error of the empirical frequency ``successes / trials``.

    The plug-in estimate ``sqrt(p_hat (1 - p_hat) / trials)``; zero at
    the boundary frequencies, where the Wilson interval
    (:func:`wilson_interval`) remains informative.

    Args:
        successes: accepted-trial count, ``0 <= successes <= trials``.
        trials: total trial count, must be positive.

    Raises:
        ValueError: on a non-positive ``trials`` or an out-of-range
            ``successes`` (both indicate a corrupted count upstream).

    >>> round(binomial_stderr(25, 100), 6)
    0.043301
    >>> binomial_stderr(100, 100)  # degenerate at the boundary
    0.0
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    return math.sqrt(p * (1.0 - p) / trials)


def wilson_interval(
    successes: int, trials: int, z: float = Z95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The default *z* is the two-sided 95% normal quantile (:data:`Z95`).
    Unlike the Wald interval ``p_hat +/- z * stderr``, the Wilson
    interval stays inside [0, 1] and does not collapse to a point at 0
    or *trials* successes — which is exactly the regime the acceptance
    experiments live in (the quantum recognizer accepts members with
    probability 1).

    Args:
        successes: accepted-trial count, ``0 <= successes <= trials``.
        trials: total trial count, must be positive.
        z: normal quantile for the confidence level; must be positive.

    Raises:
        ValueError: on a non-positive ``trials``, an out-of-range
            ``successes``, or a non-positive ``z``.

    >>> lo, hi = wilson_interval(100, 100)
    >>> round(lo, 4), hi   # informative even at p_hat = 1.0
    (0.963, 1.0)
    >>> lo, hi = wilson_interval(50, 100)
    >>> round(lo, 4), round(hi, 4)
    (0.4038, 0.5962)
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if z <= 0:
        raise ValueError("z must be positive")
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)) / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_halfwidth(successes: float, trials: int, z: float = Z95) -> float:
    """Half the width of the (clipped) Wilson interval.

    This is the service's precision figure of merit: a query with
    ``target_halfwidth=h`` keeps deepening until this value drops to
    *h* or below.  ``successes`` may be fractional — the formula only
    consults the ratio — which is how :func:`trials_for_halfwidth`
    evaluates hypothetical depths at a fixed ``p_hat``.

    >>> wilson_halfwidth(50, 100) < wilson_halfwidth(25, 50)
    True
    >>> round(wilson_halfwidth(100, 100), 4)  # one-sided at p_hat = 1
    0.0185
    """
    lo, hi = wilson_interval(successes, trials, z)
    return (hi - lo) / 2.0


def trials_for_halfwidth(
    target: float, p_hat: float = 0.5, z: float = Z95
) -> int:
    """The smallest trial count whose Wilson half-width meets *target*.

    Inverts :func:`wilson_halfwidth` in the trial count at a fixed
    acceptance frequency ``p_hat`` (the half-width is strictly
    decreasing in the depth, so the inverse is well defined; doubling
    then bisection finds the exact minimum).  ``p_hat=0.5`` — the
    default — is the worst case: any other frequency needs fewer
    trials.  The precision loop
    (:meth:`repro.lab.Orchestrator.run_to_precision`) re-plans each
    round with the *measured* frequency, so early rounds may
    under-shoot slightly and be topped up by a later round.

    Args:
        target: the half-width to reach; must lie in (0, 1).
        p_hat: assumed acceptance frequency in [0, 1].
        z: normal quantile for the confidence level; must be positive.

    Raises:
        ValueError: when *target* is outside (0, 1), *p_hat* outside
            [0, 1], or the implied depth overflows the 2**40 sanity cap
            (a target small enough to need a trillion trials is almost
            certainly a unit mistake).

    >>> n = trials_for_halfwidth(0.01)
    >>> wilson_halfwidth(n * 0.5, n) <= 0.01 < wilson_halfwidth((n - 1) * 0.5, n - 1)
    True
    >>> trials_for_halfwidth(0.01, p_hat=1.0) < trials_for_halfwidth(0.01)
    True
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target half-width must lie in (0, 1)")
    if not 0.0 <= p_hat <= 1.0:
        raise ValueError("p_hat must lie in [0, 1]")
    if z <= 0:
        raise ValueError("z must be positive")
    hi = 1
    while wilson_halfwidth(p_hat * hi, hi, z) > target:
        hi *= 2
        if hi > 1 << 40:
            raise ValueError(
                f"target half-width {target!r} needs more than 2**40 trials"
            )
    lo = max(1, hi // 2)
    while lo < hi:
        mid = (lo + hi) // 2
        if wilson_halfwidth(p_hat * mid, mid, z) <= target:
            hi = mid
        else:
            lo = mid + 1
    return hi


def growth_ratio(values: Sequence[float]) -> list[float]:
    """Consecutive ratios v_{i+1} / v_i (geometric growth shows up as
    ratios bounded away from 1)."""
    if len(values) < 2:
        return []
    return [b / a for a, b in zip(values, values[1:]) if a > 0]


def doubling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (the empirical power).

    Used to check Theta claims: Proposition 3.7's curve should fit an
    exponent near 1/3 in the input length.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        raise ValueError("degenerate x values")
    return num / den
