"""Checking measured curves against the paper's asymptotic claims.

An asymptotic statement cannot be verified at finitely many points, but
two useful finite checks exist and the experiments use both:

* **envelope fits** — find the least constant c with
  ``measured(n) <= c * shape(n)`` over the measured range; if the
  implied constant is stable as n grows, the claimed shape is
  consistent (:func:`fit_log_curve`, :func:`fit_power_curve`,
  :func:`is_bounded_by`);
* **growth ratios** — for an exponential separation, the ratio
  classical/quantum must itself grow geometrically in k
  (:func:`growth_ratio`).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence


def is_bounded_by(
    xs: Sequence[float], ys: Sequence[float], shape: Callable[[float], float]
) -> float:
    """The least c with ``y <= c * shape(x)`` at every measured point.

    A *finite* c always exists when shape is positive on the data; the
    caller judges stability (experiments assert the constant computed
    on the first half of the range also covers the second half, i.e.
    the curve is not secretly growing faster than the shape).
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    c = 0.0
    for x, y in zip(xs, ys):
        s = shape(x)
        if s <= 0:
            raise ValueError(f"shape must be positive on the data (shape({x}) = {s})")
        c = max(c, y / s)
    return c


def envelope_is_stable(
    xs: Sequence[float],
    ys: Sequence[float],
    shape: Callable[[float], float],
    slack: float = 1.25,
) -> bool:
    """True when the envelope constant fitted on the first half of the
    data, inflated by *slack*, still covers the second half.

    This is the finite-data proxy for "ys = O(shape(xs))": a curve that
    actually grows faster than the shape makes the constant drift up.
    """
    half = max(2, len(xs) // 2)
    c_head = is_bounded_by(xs[:half], ys[:half], shape)
    return all(y <= slack * c_head * shape(x) for x, y in zip(xs[half:], ys[half:]))


def fit_log_curve(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Envelope constant for y <= c * log2(x)."""
    return is_bounded_by(xs, ys, lambda x: math.log2(max(x, 2.0)))


def fit_power_curve(
    xs: Sequence[float], ys: Sequence[float], exponent: float
) -> float:
    """Envelope constant for y <= c * x^exponent."""
    return is_bounded_by(xs, ys, lambda x: x**exponent)


def binomial_stderr(successes: int, trials: int) -> float:
    """Standard error of the empirical frequency ``successes / trials``.

    The plug-in estimate ``sqrt(p_hat (1 - p_hat) / trials)``; zero at
    the boundary frequencies, where the Wilson interval
    (:func:`wilson_interval`) remains informative.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    return math.sqrt(p * (1.0 - p) / trials)


def wilson_interval(
    successes: int, trials: int, z: float = 1.959963984540054
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The default *z* is the two-sided 95% normal quantile.  Unlike the
    Wald interval ``p_hat +/- z * stderr``, the Wilson interval stays
    inside [0, 1] and does not collapse to a point at 0 or *trials*
    successes — which is exactly the regime the acceptance experiments
    live in (the quantum recognizer accepts members with probability 1).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if z <= 0:
        raise ValueError("z must be positive")
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)) / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def growth_ratio(values: Sequence[float]) -> list[float]:
    """Consecutive ratios v_{i+1} / v_i (geometric growth shows up as
    ratios bounded away from 1)."""
    if len(values) < 2:
        return []
    return [b / a for a, b in zip(values, values[1:]) if a > 0]


def doubling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (the empirical power).

    Used to check Theta claims: Proposition 3.7's curve should fit an
    exponent near 1/3 in the input length.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        raise ValueError("degenerate x values")
    return num / den
