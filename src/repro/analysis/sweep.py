"""A tiny parameter-sweep harness.

Benchmarks sweep k, t, r, block sizes...; this helper keeps the loops
uniform and the results keyed.  Acceptance sweeps — the sampled kind
that dominated wall-clock before the engine existed — go through
:func:`acceptance_sweep`, which hands the trial loop to a pluggable
:mod:`repro.engine` backend.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple


def sweep(
    fn: Callable[..., Any],
    **axes: Iterable[Any],
) -> List[Tuple[Dict[str, Any], Any]]:
    """Evaluate fn over the cartesian product of keyword axes.

    ``sweep(f, k=[1,2], t=[0,1])`` returns
    ``[({'k':1,'t':0}, f(k=1,t=0)), ...]`` in row-major order.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    results: List[Tuple[Dict[str, Any], Any]] = []

    def rec(i: int, current: Dict[str, Any]) -> None:
        if i == len(names):
            results.append((dict(current), fn(**current)))
            return
        for v in values[i]:
            current[names[i]] = v
            rec(i + 1, current)
        current.pop(names[i], None)

    rec(0, {})
    return results


def acceptance_sweep(
    labelled_words: Iterable[Tuple[Any, str]],
    trials: int,
    rng: Any = None,
    backend: Any = "batched",
    recognizer: str = "quantum",
) -> List[Tuple[Any, Any]]:
    """Sampled acceptance probability for each ``(label, word)`` pair.

    Runs every word through one :class:`repro.engine.ExecutionEngine`
    (so per-word seeds spawn in a backend-independent order) and returns
    ``[(label, AcceptanceEstimate), ...]`` in input order.  *recognizer*
    selects the machine to sample — the classical recognizers sweep the
    same way as the quantum one, so classical-vs-quantum comparisons are
    two calls with the same seed.
    """
    from ..engine import ExecutionEngine

    pairs = list(labelled_words)
    estimates = ExecutionEngine(backend).run_many(
        [word for _, word in pairs], trials, rng=rng, recognizer=recognizer
    )
    return [(label, est) for (label, _), est in zip(pairs, estimates)]
