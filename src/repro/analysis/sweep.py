"""A tiny parameter-sweep harness.

Benchmarks sweep k, t, r, block sizes...; this helper keeps the loops
uniform and the results keyed.  Acceptance sweeps — the sampled kind
that dominated wall-clock before the engine existed — go through
:func:`acceptance_sweep`, which hands the trial loop to a pluggable
:mod:`repro.engine` backend.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple


def sweep(
    fn: Callable[..., Any],
    **axes: Iterable[Any],
) -> List[Tuple[Dict[str, Any], Any]]:
    """Evaluate fn over the cartesian product of keyword axes.

    ``sweep(f, k=[1,2], t=[0,1])`` returns
    ``[({'k':1,'t':0}, f(k=1,t=0)), ...]`` in row-major order.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    results: List[Tuple[Dict[str, Any], Any]] = []

    def rec(i: int, current: Dict[str, Any]) -> None:
        if i == len(names):
            results.append((dict(current), fn(**current)))
            return
        for v in values[i]:
            current[names[i]] = v
            rec(i + 1, current)
        current.pop(names[i], None)

    rec(0, {})
    return results


def acceptance_sweep(
    labelled_words: Iterable[Tuple[Any, str]],
    trials: int,
    rng: Any = None,
    backend: Any = "batched",
    recognizer: str = "quantum",
    store: Any = None,
    max_batch_bytes: Any = None,
) -> List[Tuple[Any, Any]]:
    """Sampled acceptance probability for each ``(label, word)`` pair.

    Runs every word through one :class:`repro.engine.ExecutionEngine`
    (so per-word seeds spawn in a backend-independent order) and returns
    ``[(label, AcceptanceEstimate), ...]`` in input order.  *recognizer*
    selects the machine to sample — the classical recognizers sweep the
    same way as the quantum one, so classical-vs-quantum comparisons are
    two calls with the same seed.

    With *store* (a :class:`repro.lab.ResultStore` or a directory path)
    the sweep goes through the lab orchestrator instead: each word's
    estimate is served from the store, deepened, or computed and
    cached.  Counts are identical to the engine path for the same
    seed — each word's parent seed is the very child seed ``run_many``
    would have spawned for it — so adding ``store=`` never changes a
    sweep's statistics, only how much of it re-executes.

    *max_batch_bytes* bounds the dense working set of every run (see
    :mod:`repro.core.tiling`); tiled counts are byte-identical, so it
    too never changes a sweep's statistics.  It only applies when
    *backend* is a registry name — a configured backend instance
    already carries its own budget.

    Seeding semantics: word *i* samples under the *i*-th spawned child
    of ``rng`` — fixed by word order, not by backend or store, so any
    two calls with the same seed and word list agree count-for-count.

    Failure modes: ``ValueError`` for unknown backend/recognizer names,
    non-positive trials, or a configured backend instance combined
    with ``store=`` / ``max_batch_bytes=`` (specs and budgets need a
    name, not an instance).

    >>> from repro.core import member
    >>> import numpy as np
    >>> words = [("m1", member(1, np.random.default_rng(0)))]
    >>> [(label, est.accepted) for label, est in
    ...  acceptance_sweep(words, trials=50, rng=7)]
    [('m1', 50)]
    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:   # cached: same counts
    ...     [(_, cached)] = acceptance_sweep(words, trials=50, rng=7, store=tmp)
    >>> cached.accepted
    50
    """
    from ..engine import ExecutionEngine

    pairs = list(labelled_words)
    if max_batch_bytes is not None and not isinstance(backend, str):
        raise ValueError(
            "max_batch_bytes= requires backend to be a registry name (a "
            "configured backend instance already carries its own budget)"
        )
    if store is not None:
        from ..lab import ExperimentSpec, Orchestrator
        from ..rng import ensure_rng, spawn_seeds

        if not isinstance(backend, str):
            # A configured instance cannot be serialized into a spec,
            # and silently rebuilding a default-options instance would
            # not be the execution the caller asked for.
            raise ValueError(
                "store= requires backend to be a registry name (specs "
                "record names, not configured backend instances)"
            )
        backend_name = backend
        orchestrator = Orchestrator(store, max_batch_bytes=max_batch_bytes)
        word_seeds = spawn_seeds(ensure_rng(rng), len(pairs))
        results = []
        for (label, word), seed in zip(pairs, word_seeds):
            run = orchestrator.run(
                ExperimentSpec(
                    word=word,
                    recognizer=recognizer,
                    backend=backend_name,
                    trials=trials,
                    seed=seed,
                )
            )
            results.append((label, run.estimate))
        return results
    options = {} if max_batch_bytes is None else {"max_batch_bytes": max_batch_bytes}
    estimates = ExecutionEngine(backend, **options).run_many(
        [word for _, word in pairs], trials, rng=rng, recognizer=recognizer
    )
    return [(label, est) for (label, _), est in zip(pairs, estimates)]
