"""A tiny parameter-sweep harness.

Benchmarks sweep k, t, r, block sizes...; this helper keeps the loops
uniform and the results keyed, nothing more.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple


def sweep(
    fn: Callable[..., Any],
    **axes: Iterable[Any],
) -> List[Tuple[Dict[str, Any], Any]]:
    """Evaluate fn over the cartesian product of keyword axes.

    ``sweep(f, k=[1,2], t=[0,1])`` returns
    ``[({'k':1,'t':0}, f(k=1,t=0)), ...]`` in row-major order.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    results: List[Tuple[Dict[str, Any], Any]] = []

    def rec(i: int, current: Dict[str, Any]) -> None:
        if i == len(names):
            results.append((dict(current), fn(**current)))
            return
        for v in values[i]:
            current[names[i]] = v
            rec(i + 1, current)
        current.pop(names[i], None)

    rec(0, {})
    return results
