"""Plain-text tables for the benchmark harnesses.

Every benchmark prints its experiment as one of these tables, so the
rows EXPERIMENTS.md quotes come from the same code paths the tests
check.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


class Table:
    """A fixed-column text table with a title and optional notes."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()
