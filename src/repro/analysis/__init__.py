"""Analysis and reporting utilities shared by the benchmarks.

* :mod:`repro.analysis.counting` — Fact 2.2 arithmetic and the
  TM-cells/register-bits correspondence.
* :mod:`repro.analysis.bounds` — the paper's asymptotic claims as
  checkable envelope predicates (is this curve O(log n)?  Theta(n^{1/3})?).
* :mod:`repro.analysis.report` — plain-text tables (the benchmarks
  print paper-style rows through these).
* :mod:`repro.analysis.sweep` — tiny parameter-sweep harness.
"""

from .counting import (
    fact_2_2_bound,
    space_needed_for_configurations,
    registers_to_cells,
    cells_to_registers,
    check_fact_2_2,
)
from .bounds import (
    binomial_stderr,
    fit_log_curve,
    fit_power_curve,
    is_bounded_by,
    growth_ratio,
    wilson_interval,
)
from .report import Table
from .sweep import sweep, acceptance_sweep

__all__ = [
    "fact_2_2_bound",
    "space_needed_for_configurations",
    "registers_to_cells",
    "cells_to_registers",
    "check_fact_2_2",
    "binomial_stderr",
    "fit_log_curve",
    "fit_power_curve",
    "is_bounded_by",
    "growth_ratio",
    "wilson_interval",
    "Table",
    "sweep",
    "acceptance_sweep",
]
